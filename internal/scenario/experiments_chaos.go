package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flightrec"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// The R7 sweep: automation levels × per-dispatch chaos rates. Fixed here so
// the live experiment and the from-recording regeneration walk cells in the
// same order.
var (
	r7Levels = []core.Level{core.L1, core.L3}
	r7Rates  = []float64{0, 0.1, 0.3}
)

// r7 is one (level × chaos × seed) cell's raw result — computed live from
// the world, or reconstructed from a flight recording by r7FromSummary.
type r7 struct {
	windows              []float64
	robot, human         int
	watchdog, degraded   int
	late, injected, open int
}

// R7ActuatorChaos regenerates Table R7: repair performance when the
// maintenance plane's own actuators fail — robots stalling mid-rung, losing
// their outcome reports, finishing late, or crying wolf (spurious give-ups).
// Each (level × chaos-rate × seed) cell runs the standard accelerated year
// with the robot lane wrapped in faults.ScaledExecChaos at the given rate;
// rate 0 is the unwrapped baseline, so the first row of each level doubles
// as a regression anchor against T1. The table reports repair-latency
// quantiles, the share of dispatches that fell to the human lane, and the
// watchdog's own bookkeeping (fires, degradations, late outcomes) against
// the injected fault count.
//
// With p.RecordDir set, every cell also writes a flight recording
// (R7-<level>-chaos<rate>-seed<seed>.fr); R7FromRecordings regenerates the
// identical table from those files without re-simulating.
func R7ActuatorChaos(r *Runner, p RepairParams) (*metrics.Table, error) {
	var cells []Cell[r7]
	for _, level := range r7Levels {
		for _, rate := range r7Rates {
			for _, seed := range p.Seeds {
				cells = append(cells, Cell[r7]{
					Key: fmt.Sprintf("R7/%v/chaos=%g/seed=%d", level, rate, seed),
					Run: func() (r7, error) {
						return runR7Cell(p, level, rate, seed)
					},
				})
			}
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	return r7Table(p.Duration.String(), p.FaultScale, len(p.Seeds), res), nil
}

// runR7Cell runs one (level × chaos × seed) world, recording it when
// p.RecordDir is set.
func runR7Cell(p RepairParams, level core.Level, rate float64, seed uint64) (r7, error) {
	var c r7
	w, err := Build(Options{
		Seed:       seed,
		BuildNet:   p.net(),
		Level:      level,
		Techs:      2,
		Robots:     true,
		FaultScale: p.FaultScale,
		Chaos:      faults.ScaledExecChaos(rate),
	})
	if err != nil {
		return c, err
	}
	var recd *Recording
	var out *os.File
	if p.RecordDir != "" {
		out, err = os.Create(filepath.Join(p.RecordDir, r7RecordingName(level, rate, seed)))
		if err != nil {
			return c, err
		}
		recd, err = w.StartRecording(out, r7RecordingMeta(p, level, rate, seed), 6*sim.Hour)
		if err != nil {
			out.Close()
			return c, err
		}
	}
	w.Run(p.Duration)
	for _, t := range w.Store.All() {
		if t.Kind != ticket.Reactive {
			continue
		}
		switch t.Status {
		case ticket.Resolved:
			c.windows = append(c.windows, t.ServiceWindow().Duration().Hours())
		case ticket.Open, ticket.Assigned, ticket.Active:
			c.open++
		}
	}
	st := w.Ctrl.Stats()
	c.robot, c.human = st.RobotTasks, st.HumanTasks
	c.watchdog, c.degraded, c.late = st.WatchdogFires, st.DegradedTickets, st.LateOutcomes
	c.injected = w.ChaosStats().Injected()
	if recd != nil {
		if _, err := recd.Close(); err != nil {
			out.Close()
			return c, err
		}
		if err := out.Close(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// r7Table aggregates per-cell results into the rendered table. The live
// experiment and the from-recording path both feed it, in identical
// (level × rate × seed) cell order, so their outputs are byte-identical.
func r7Table(duration string, faultScale float64, seeds int, res []r7) *metrics.Table {
	tab := &metrics.Table{
		Title: "R7: repair performance under actuator chaos",
		Cols: []string{"level", "chaos", "tickets", "median", "p95",
			"human share", "watchdog", "degraded", "late", "injected"},
		Notes: []string{
			fmt.Sprintf("duration=%s per seed, fault acceleration x%g, seeds=%d", duration, faultScale, seeds),
			"chaos: total per-dispatch injection rate on the robot lane (stall/lost/slow/spurious mix)",
			"human share: fraction of physical dispatches executed by technicians",
			"watchdog/degraded/late: force-failed attempts, tickets escalated after repeated robot",
			"watchdog failures, and outcomes arriving after their attempt was force-failed",
		},
	}
	i := 0
	for _, level := range r7Levels {
		for _, rate := range r7Rates {
			var all metrics.Histogram
			var agg r7
			for s := 0; s < seeds; s++ {
				c := res[i]
				i++
				for _, v := range c.windows {
					all.Add(v)
				}
				agg.robot += c.robot
				agg.human += c.human
				agg.watchdog += c.watchdog
				agg.degraded += c.degraded
				agg.late += c.late
				agg.injected += c.injected
				agg.open += c.open
			}
			dispatches := agg.robot + agg.human
			share := 0.0
			if dispatches > 0 {
				share = float64(agg.human) / float64(dispatches)
			}
			tab.AddRow(level.String(), fmt.Sprintf("%.0f%%", 100*rate), all.N(),
				fmtHours(all.Quantile(0.5)), fmtHours(all.Quantile(0.95)),
				fmt.Sprintf("%.1f%%", 100*share),
				agg.watchdog, agg.degraded, agg.late, agg.injected)
		}
	}
	return tab
}

// r7RecordingName is the per-cell recording filename.
func r7RecordingName(level core.Level, rate float64, seed uint64) string {
	return fmt.Sprintf("R7-%v-chaos%g-seed%d.fr", level, rate, seed)
}

// r7RecordingMeta is the header metadata identifying one R7 cell: the run
// coordinates plus the parameters the table notes reproduce.
func r7RecordingMeta(p RepairParams, level core.Level, rate float64, seed uint64) map[string]string {
	return map[string]string{
		"experiment": "R7",
		"level":      level.String(),
		"chaos":      fmt.Sprintf("%g", rate),
		"seed":       fmt.Sprintf("%d", seed),
		"duration":   p.Duration.String(),
		"faultscale": fmt.Sprintf("%g", p.FaultScale),
		"quick":      fmt.Sprintf("%t", p.Quick),
	}
}

// r7FromSummary reconstructs one cell's result from a replayed recording:
// service windows from the ticket-event stream, the work counters from the
// end-of-run state frame. Produces exactly what the live cell computed.
func r7FromSummary(sum *flightrec.Summary) (r7, error) {
	c := r7{windows: sum.ReactiveWindows(), open: sum.ReactiveOpen()}
	var firstErr error
	get := func(key string) int {
		kv, ok := sum.StateKV(0, key)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("scenario: recording has no state key %q", key)
			}
			return 0
		}
		return int(kv.Int())
	}
	c.robot = get("robot-tasks")
	c.human = get("human-tasks")
	c.watchdog = get("watchdog-fires")
	c.degraded = get("degraded-tickets")
	c.late = get("late-outcomes")
	c.injected = get("chaos-injected")
	return c, firstErr
}

// R7FromRecordings regenerates the R7 table from a directory of per-cell
// flight recordings written by a prior run with RecordDir set — no
// simulation. The sweep coordinates (levels, rates, seeds) and the table
// parameters are recovered from the recordings' metadata; every replay is
// checked against its trailer fingerprint, so a corrupt or lossy file fails
// loudly instead of skewing the table.
func R7FromRecordings(dir string) (*metrics.Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type cellRes struct {
		c    r7
		meta map[string]string
	}
	bySeed := map[string]map[uint64]cellRes{} // "level/chaos" -> seed -> cell
	seedSet := map[uint64]bool{}
	var duration string
	var faultScale float64
	n := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "R7-") || !strings.HasSuffix(name, ".fr") {
			continue
		}
		res, err := replayFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		meta := res.Meta
		if meta["experiment"] != "R7" {
			return nil, fmt.Errorf("%s: not an R7 recording (experiment=%q)", name, meta["experiment"])
		}
		seed, err := strconv.ParseUint(meta["seed"], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad seed metadata %q", name, meta["seed"])
		}
		fs, err := strconv.ParseFloat(meta["faultscale"], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad faultscale metadata %q", name, meta["faultscale"])
		}
		if n == 0 {
			duration, faultScale = meta["duration"], fs
		} else if meta["duration"] != duration || fs != faultScale {
			return nil, fmt.Errorf("%s: parameters %s/x%g differ from the other recordings (%s/x%g) — mixed runs in one directory",
				name, meta["duration"], fs, duration, faultScale)
		}
		c, err := r7FromSummary(res.Summary)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		key := meta["level"] + "/" + meta["chaos"]
		if bySeed[key] == nil {
			bySeed[key] = map[uint64]cellRes{}
		}
		bySeed[key][seed] = cellRes{c: c, meta: meta}
		seedSet[seed] = true
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("no R7-*.fr recordings in %s", dir)
	}
	var seeds []uint64
	for s := range seedSet {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	var res []r7
	for _, level := range r7Levels {
		for _, rate := range r7Rates {
			key := fmt.Sprintf("%v/%g", level, rate)
			for _, seed := range seeds {
				cell, ok := bySeed[key][seed]
				if !ok {
					return nil, fmt.Errorf("missing recording for cell %s/seed=%d (expected %s)",
						key, seed, r7RecordingName(level, rate, seed))
				}
				res = append(res, cell.c)
			}
		}
	}
	return r7Table(duration, faultScale, len(seeds), res), nil
}

// replayFile replays one recording from disk and enforces the lossless
// round-trip: the re-derived fingerprint must equal the trailer's.
func replayFile(path string) (*flightrec.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := flightrec.Replay(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if res.Trailer == nil {
		return nil, fmt.Errorf("%s: recording has no trailer (interrupted run?)", filepath.Base(path))
	}
	if !res.Match() {
		return nil, fmt.Errorf("%s: replay fingerprint %016x != recorded %016x — recording is corrupt or the codec is lossy",
			filepath.Base(path), res.Summary.Fingerprint(), res.Trailer.Fingerprint)
	}
	return res, nil
}
