package scenario

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/inventory"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// T3Proactive regenerates Table T3: what proactive and predictive
// maintenance buy (§4) — fault-onset reduction, availability, and the
// robot-hours they cost.
func T3Proactive(p RepairParams) (*metrics.Table, error) {
	type policy struct {
		name                  string
		proactive, predictive bool
	}
	policies := []policy{
		{"reactive only", false, false},
		{"threshold proactive", true, false},
		{"predictive", false, true},
		{"proactive + predictive", true, true},
	}
	tab := &metrics.Table{
		Title: "T3: proactive maintenance policies (L4 fleet)",
		Cols: []string{"policy", "fault onsets", "reactive tickets", "availability",
			"proactive tasks", "robot-hours"},
		Notes: []string{"onset reduction comes from wear-clock renewal on proactively serviced links"},
	}
	for _, pol := range policies {
		var onsets, reactive, proTasks int
		var avail, robotHours float64
		for _, seed := range p.Seeds {
			w, err := Build(Options{
				Seed:       seed,
				BuildNet:   p.net(),
				Level:      core.L4,
				Techs:      2,
				Robots:     true,
				FaultScale: p.FaultScale,
				MutateCore: func(c *core.Config) {
					c.Proactive = pol.proactive
					c.Predictive = pol.predictive
					c.PredictTrainAfter = p.Duration / 4
				},
			})
			if err != nil {
				return nil, err
			}
			w.Run(p.Duration)
			st := w.Inj.Stats()
			for _, n := range st.Onsets {
				onsets += n
			}
			sum := w.Store.Summarize()
			reactive += sum.ByKind[ticket.Reactive]
			proTasks += sum.ByKind[ticket.Proactive] + sum.ByKind[ticket.Predictive]
			avail += w.Ledger.FleetAvailability()
			for _, u := range w.Fleet.Units() {
				robotHours += u.BusyTime.Duration().Hours()
			}
		}
		n := float64(len(p.Seeds))
		tab.AddRow(pol.name, onsets, reactive, avail/n, proTasks, robotHours/n)
	}
	return tab, nil
}

// T4Predictor regenerates Table T4: precision/recall of the telemetry
// failure predictor on held-out samples, across decision thresholds.
func T4Predictor(p RepairParams) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title: "T4: failure-predictor quality (logistic model on telemetry features)",
		Cols:  []string{"threshold", "precision", "recall", "F1", "TP", "FP", "FN"},
	}
	// One long collection run; split matured samples 70/30.
	w, err := Build(Options{
		Seed:       p.Seeds[0],
		BuildNet:   p.net(),
		Level:      core.L4,
		Techs:      2,
		Robots:     true,
		FaultScale: p.FaultScale,
		MutateCore: func(c *core.Config) {
			c.Proactive = false
			c.Predictive = true
			// Collect only: train at the very end so predictive actions do
			// not disturb the evaluation set.
			c.PredictTrainAfter = p.Duration * 2
		},
	})
	if err != nil {
		return nil, err
	}
	w.Run(p.Duration)
	X, y := w.Ctrl.CollectorDataset()
	if len(X) < 10 {
		return nil, fmt.Errorf("scenario: only %d predictor samples collected", len(X))
	}
	split := len(X) * 7 / 10
	pred := core.NewPredictor()
	pred.Train(X[:split], y[:split])
	if !pred.Trained {
		tab.Notes = append(tab.Notes, "predictor degenerate: no positive samples in training window")
		return tab, nil
	}
	positives := 0
	for _, v := range y[split:] {
		if v {
			positives++
		}
	}
	base := float64(positives) / float64(len(X)-split)
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("train=%d test=%d (%d positive test samples, base rate %.3f)", split, len(X)-split, positives, base))
	for _, th := range []float64{0.5, 0.6, 0.7} {
		q := pred.Evaluate(X[split:], y[split:], th)
		tab.AddRow(th, q.Precision, q.Recall, q.F1, q.TP, q.FP, q.FN)
	}
	// Ranking quality: precision among the top-decile scores vs base rate.
	// Most faults in the model are memoryless and genuinely unpredictable;
	// the lift shows what the predictable minority (recurrence-prone links)
	// buys.
	type scored struct {
		s float64
		y bool
	}
	rank := make([]scored, 0, len(X)-split)
	for i := split; i < len(X); i++ {
		rank = append(rank, scored{pred.Score(X[i]), y[i]})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].s > rank[j].s })
	top := len(rank) / 10
	if top > 0 {
		hits := 0
		for _, r := range rank[:top] {
			if r.y {
				hits++
			}
		}
		p10 := float64(hits) / float64(top)
		lift := 0.0
		if base > 0 {
			lift = p10 / base
		}
		tab.Notes = append(tab.Notes,
			fmt.Sprintf("precision@top-10%% = %.3f (lift %.2fx over base rate)", p10, lift))
	}
	return tab, nil
}

// T5RightProvisioning regenerates Table T5: spare links required for a
// 99.99% connectivity target as a function of the repair regime — the
// paper's right-provisioning argument (§2). Repair regimes use the measured
// mean service windows from quick L0/L3 runs plus today's ticket SLAs.
func T5RightProvisioning(p RepairParams) (*metrics.Table, error) {
	measure := func(level core.Level) (sim.Time, error) {
		w, err := levelWorld(p, level, p.Seeds[0])
		if err != nil {
			return 0, err
		}
		w.Run(p.Duration)
		sum := w.Store.Summarize()
		if sum.Resolved == 0 {
			return 0, fmt.Errorf("scenario: no resolved tickets at %v", level)
		}
		return sum.MeanWindow, nil
	}
	human, err := measure(core.L0)
	if err != nil {
		return nil, err
	}
	robot, err := measure(core.L3)
	if err != nil {
		return nil, err
	}
	const groupLinks = 512
	const annualRate = 0.35
	const target = 0.9999
	rows := inventory.ProvisioningSweep(groupLinks, annualRate, target, map[string]sim.Time{
		"human (measured L0)": human,
		"human P2 SLA (7d)":   7 * sim.Day,
		"robot (measured L3)": robot,
	})
	tab := &metrics.Table{
		Title: "T5: redundant links needed for 99.99% availability vs repair regime",
		Cols:  []string{"regime", "MTTR", "spare links per 512", "overprovisioning %"},
		Notes: []string{
			fmt.Sprintf("group of %d links, %.2f failures/link-year, Poisson machine-repair model", groupLinks, annualRate),
		},
	}
	for _, r := range rows {
		tab.AddRow(r.Regime, r.MTTR.String(), r.Spares, r.CostPct)
	}
	return tab, nil
}
