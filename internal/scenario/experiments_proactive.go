package scenario

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/inventory"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// T3Proactive regenerates Table T3: what proactive and predictive
// maintenance buy (§4) — fault-onset reduction, availability, and the
// robot-hours they cost. One cell per (policy × seed).
func T3Proactive(r *Runner, p RepairParams) (*metrics.Table, error) {
	type policy struct {
		name                  string
		proactive, predictive bool
	}
	policies := []policy{
		{"reactive only", false, false},
		{"threshold proactive", true, false},
		{"predictive", false, true},
		{"proactive + predictive", true, true},
	}
	tab := &metrics.Table{
		Title: "T3: proactive maintenance policies (L4 fleet)",
		Cols: []string{"policy", "fault onsets", "reactive tickets", "availability",
			"proactive tasks", "robot-hours"},
		Notes: []string{"onset reduction comes from wear-clock renewal on proactively serviced links"},
	}
	type t3 struct {
		onsets, reactive, proTasks int
		avail, robotHours          float64
	}
	var cells []Cell[t3]
	for _, pol := range policies {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[t3]{
				Key: fmt.Sprintf("T3/%s/seed=%d", pol.name, seed),
				Run: func() (t3, error) {
					var c t3
					w, err := Build(Options{
						Seed:       seed,
						BuildNet:   p.net(),
						Level:      core.L4,
						Techs:      2,
						Robots:     true,
						FaultScale: p.FaultScale,
						MutateCore: func(cc *core.Config) {
							cc.Proactive = pol.proactive
							cc.Predictive = pol.predictive
							cc.PredictTrainAfter = p.Duration / 4
						},
					})
					if err != nil {
						return c, err
					}
					w.Run(p.Duration)
					st := w.Inj.Stats()
					for _, n := range st.Onsets {
						c.onsets += n
					}
					sum := w.Store.Summarize()
					c.reactive = sum.ByKind[ticket.Reactive]
					c.proTasks = sum.ByKind[ticket.Proactive] + sum.ByKind[ticket.Predictive]
					c.avail = w.Ledger.FleetAvailability()
					for _, u := range w.Fleet.Units() {
						c.robotHours += u.BusyTime.Duration().Hours()
					}
					return c, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	for pi, pol := range policies {
		var onsets, reactive, proTasks int
		var avail, robotHours float64
		for si := range p.Seeds {
			c := res[pi*len(p.Seeds)+si]
			onsets += c.onsets
			reactive += c.reactive
			proTasks += c.proTasks
			avail += c.avail
			robotHours += c.robotHours
		}
		n := float64(len(p.Seeds))
		tab.AddRow(pol.name, onsets, reactive, avail/n, proTasks, robotHours/n)
	}
	return tab, nil
}

// T4Predictor regenerates Table T4: precision/recall of the telemetry
// failure predictor on held-out samples, across decision thresholds. The
// whole experiment is one cell (a single long collection run).
func T4Predictor(r *Runner, p RepairParams) (*metrics.Table, error) {
	cells := []Cell[*metrics.Table]{{
		Key: fmt.Sprintf("T4/L4/seed=%d", p.Seeds[0]),
		Run: func() (*metrics.Table, error) { return t4Predictor(p) },
	}}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

func t4Predictor(p RepairParams) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title: "T4: failure-predictor quality (logistic model on telemetry features)",
		Cols:  []string{"threshold", "precision", "recall", "F1", "TP", "FP", "FN"},
	}
	// One long collection run; split matured samples 70/30.
	w, err := Build(Options{
		Seed:       p.Seeds[0],
		BuildNet:   p.net(),
		Level:      core.L4,
		Techs:      2,
		Robots:     true,
		FaultScale: p.FaultScale,
		MutateCore: func(c *core.Config) {
			c.Proactive = false
			c.Predictive = true
			// Collect only: train at the very end so predictive actions do
			// not disturb the evaluation set.
			c.PredictTrainAfter = p.Duration * 2
		},
	})
	if err != nil {
		return nil, err
	}
	w.Run(p.Duration)
	X, y := w.Ctrl.CollectorDataset()
	if len(X) < 10 {
		return nil, fmt.Errorf("scenario: only %d predictor samples collected", len(X))
	}
	split := len(X) * 7 / 10
	pred := core.NewPredictor()
	pred.Train(X[:split], y[:split])
	if !pred.Trained {
		tab.Notes = append(tab.Notes, "predictor degenerate: no positive samples in training window")
		return tab, nil
	}
	positives := 0
	for _, v := range y[split:] {
		if v {
			positives++
		}
	}
	base := float64(positives) / float64(len(X)-split)
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("train=%d test=%d (%d positive test samples, base rate %.3f)", split, len(X)-split, positives, base))
	for _, th := range []float64{0.5, 0.6, 0.7} {
		q := pred.Evaluate(X[split:], y[split:], th)
		tab.AddRow(th, q.Precision, q.Recall, q.F1, q.TP, q.FP, q.FN)
	}
	// Ranking quality: precision among the top-decile scores vs base rate.
	// Most faults in the model are memoryless and genuinely unpredictable;
	// the lift shows what the predictable minority (recurrence-prone links)
	// buys.
	type scored struct {
		s float64
		y bool
	}
	rank := make([]scored, 0, len(X)-split)
	for i := split; i < len(X); i++ {
		rank = append(rank, scored{pred.Score(X[i]), y[i]})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].s > rank[j].s })
	top := len(rank) / 10
	if top > 0 {
		hits := 0
		for _, r := range rank[:top] {
			if r.y {
				hits++
			}
		}
		p10 := float64(hits) / float64(top)
		lift := 0.0
		if base > 0 {
			lift = p10 / base
		}
		tab.Notes = append(tab.Notes,
			fmt.Sprintf("precision@top-10%% = %.3f (lift %.2fx over base rate)", p10, lift))
	}
	return tab, nil
}

// T5RightProvisioning regenerates Table T5: spare links required for a
// 99.99% connectivity target as a function of the repair regime — the
// paper's right-provisioning argument (§2). Repair regimes use the measured
// mean service windows from quick L0/L3 runs plus today's ticket SLAs. The
// two measurement runs are independent cells.
func T5RightProvisioning(r *Runner, p RepairParams) (*metrics.Table, error) {
	measure := func(level core.Level) Cell[sim.Time] {
		return Cell[sim.Time]{
			Key: fmt.Sprintf("T5/%v/seed=%d", level, p.Seeds[0]),
			Run: func() (sim.Time, error) {
				w, err := levelWorld(p, level, p.Seeds[0])
				if err != nil {
					return 0, err
				}
				w.Run(p.Duration)
				sum := w.Store.Summarize()
				if sum.Resolved == 0 {
					return 0, fmt.Errorf("scenario: no resolved tickets at %v", level)
				}
				return sum.MeanWindow, nil
			},
		}
	}
	res, err := RunCells(r, []Cell[sim.Time]{measure(core.L0), measure(core.L3)})
	if err != nil {
		return nil, err
	}
	human, robot := res[0], res[1]
	const groupLinks = 512
	const annualRate = 0.35
	const target = 0.9999
	rows := inventory.ProvisioningSweep(groupLinks, annualRate, target, map[string]sim.Time{
		"human (measured L0)": human,
		"human P2 SLA (7d)":   7 * sim.Day,
		"robot (measured L3)": robot,
	})
	tab := &metrics.Table{
		Title: "T5: redundant links needed for 99.99% availability vs repair regime",
		Cols:  []string{"regime", "MTTR", "spare links per 512", "overprovisioning %"},
		Notes: []string{
			fmt.Sprintf("group of %d links, %.2f failures/link-year, Poisson machine-repair model", groupLinks, annualRate),
		},
	}
	for _, r := range rows {
		tab.AddRow(r.Regime, r.MTTR.String(), r.Spares, r.CostPct)
	}
	return tab, nil
}
