package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fleetRegion adapts one World to the fleet.Region contract: health
// summaries for the hub's aggregation stage, robot lending for cross-region
// rebalancing, and trunk-weather notices. Every method runs on the region's
// own shard, so it touches only this world.
type fleetRegion struct {
	w *World

	// Received counts robots this region received from donors; TrunkDown
	// counts adjacent-trunk outage notices.
	Received  int
	TrunkDown int
}

func (fr *fleetRegion) Summary(at sim.Time) fleet.Summary {
	down := 0
	for _, l := range fr.w.Net.Links {
		if fr.w.Inj.Observable(l.ID) != faults.Healthy {
			down++
		}
	}
	sum := fr.w.Store.Summarize()
	return fleet.Summary{
		Links: len(fr.w.Net.Links), LinksDown: down,
		OpenTickets: len(fr.w.Store.OpenQueue()), Resolved: sum.Resolved,
		RobotsIdle: fr.w.Fleet.AvailableUnits(), RobotsTotal: len(fr.w.Fleet.Units()),
	}
}

func (fr *fleetRegion) LendUnit() bool {
	for _, u := range fr.w.Fleet.Units() {
		if u.Available() && fr.w.Fleet.RemoveUnit(u) {
			return true
		}
	}
	return false
}

func (fr *fleetRegion) ReceiveUnit(name string) {
	// Transferred units arrive hall-scoped: they are the surge capacity the
	// borrower can point anywhere.
	fr.w.Fleet.AddUnit(name, robot.HallScope, topology.Location{})
	fr.Received++
}

func (fr *fleetRegion) TrunkStateChanged(up bool, at sim.Time) {
	if !up {
		fr.TrunkDown++
	}
}

// FleetParams sizes the F8 fleet scale-out experiment.
type FleetParams struct {
	Seed    uint64
	Regions int
	// Per-region fabric; Regions × (Leaves×Spines×Uplinks + Leaves×Hosts)
	// links total.
	Leaves, Spines, HostsPerLeaf int

	Days       int
	FaultScale float64 // per-region accelerated aging
	TrunkScale float64 // overlay trunk acceleration

	// Workers is the shard-worker sweep; 0 entries mean runtime.NumCPU().
	// Duplicates (after substitution) collapse.
	Workers []int

	// RecordDir, when set, makes F8 write one flight recording per sweep
	// point (F8-workers<n>.fr): shard-tagged frames merged in epoch-barrier
	// order, byte-identical at every worker count.
	RecordDir string
}

// DefaultFleetParams returns the full-size F8 configuration — 100
// datacenters of ~10k links each, one million links fleet-wide — or the
// quick variant used by tests and `-quick` runs.
func DefaultFleetParams(quick bool) FleetParams {
	if quick {
		return FleetParams{
			Seed: 9, Regions: 4, Leaves: 8, Spines: 2, HostsPerLeaf: 4,
			Days: 3, FaultScale: 1000, TrunkScale: 300,
			Workers: []int{1, 2},
		}
	}
	return FleetParams{
		Seed: 9, Regions: 100, Leaves: 64, Spines: 32, HostsPerLeaf: 128,
		Days: 3, FaultScale: 20, TrunkScale: 50,
		Workers: []int{1, 2, 4, 0},
	}
}

// workerSweep resolves the sweep list: substitute NumCPU for zeros, drop
// non-positives, dedup preserving order.
func (p FleetParams) workerSweep() []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range p.Workers {
		if w == 0 {
			w = runtime.NumCPU()
		}
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// LinksPerRegion is the per-datacenter link count the fabric config yields.
func (p FleetParams) LinksPerRegion() int {
	return p.Leaves*p.Spines + p.Leaves*p.HostsPerLeaf
}

// BuildFleet wires a region-sharded fleet: every region is a complete
// self-maintenance World (topology, faults, telemetry, pipeline, robots,
// humans) living on its own shard of one sim.MultiEngine, and the hub shard
// runs the inter-region overlay plus the aggregation stage.
func BuildFleet(p FleetParams, workers int) (*fleet.Fleet, []*fleetRegion, error) {
	regions := make([]*fleetRegion, 0, p.Regions)
	f, err := fleet.Build(fleet.Config{
		Seed:    p.Seed,
		Regions: p.Regions,
		Workers: workers,
		// Any backlog with no idle robots is grounds to borrow: half the
		// fleet (below) launches without robots, the paper's staged-rollout
		// situation, and leans on transfers from the automated half.
		TransferBacklog: 1,
		// A fleet ticket at 0.2% of a datacenter's links down: at these
		// acceleration factors a healthy region sits well under that, a
		// struggling one (robot-less, understaffed) crosses it.
		DegradedFrac:    0.002,
		TrunkFaultScale: p.TrunkScale,
		BuildRegion: func(shard *sim.Shard, region int) (fleet.Region, error) {
			// Staged rollout: even regions are automated datacenters; odd
			// regions are fresh builds still waiting on their robot
			// deployment — understaffed, they run on technicians plus
			// whatever the fleet lends them.
			automated := region%2 == 0
			techs := 1
			if automated {
				techs = 2
			}
			w, err := Build(Options{
				//lint:allow crossshard build-time wiring: the region's world is constructed on its own shard's engine
				Eng: shard.Engine(),
				BuildNet: func() (*topology.Network, error) {
					return topology.NewLeafSpine(topology.LeafSpineConfig{
						Leaves: p.Leaves, Spines: p.Spines, HostsPerLeaf: p.HostsPerLeaf,
						Uplinks: 1, FabricGbps: 400, HostGbps: 100,
					})
				},
				Level: core.L3, Techs: techs, Robots: automated,
				FaultScale: p.FaultScale,
			})
			if err != nil {
				return nil, err
			}
			// Automated datacenters carry hall-scope surge units beyond the
			// per-row deployment — the slack the fleet broker redistributes.
			if automated {
				for k := 0; k < 2; k++ {
					w.Fleet.AddUnit(fmt.Sprintf("surge-%d-%d", region, k),
						robot.HallScope, topology.Location{})
				}
			}
			fr := &fleetRegion{w: w}
			regions = append(regions, fr)
			return fr, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return f, regions, nil
}

// F8FleetScale regenerates Table F8: the fleet scale-out experiment. One
// sharded world — every region a full datacenter — is run once per shard
// worker count; the table reports the coordination work (epochs, cross-shard
// events, transfers, fleet tickets, overlay availability) and the report
// fingerprint, which must be identical across the whole sweep. The paper's
// scale pitch (§4: "low-cost rollout of new networks", datacenters as
// self-maintaining units of a fleet) is only credible if the fleet simulates
// deterministically at any parallelism, so the fingerprint equality is
// enforced here, not just in tests.
func F8FleetScale(r *Runner, p FleetParams) (*metrics.Table, error) {
	sweep := p.workerSweep()
	type row struct {
		workers int
		rep     *fleet.Report
		trunks  int
		links   int
	}
	cells := make([]Cell[row], len(sweep))
	for i, w := range sweep {
		w := w
		cells[i] = Cell[row]{
			Key: fmt.Sprintf("F8/workers=%d", w),
			Run: func() (row, error) {
				f, regions, err := BuildFleet(p, w)
				if err != nil {
					return row{}, err
				}
				var frec *fleetRecording
				var out *os.File
				if p.RecordDir != "" {
					out, err = os.Create(filepath.Join(p.RecordDir, fmt.Sprintf("F8-workers%d.fr", w)))
					if err != nil {
						return row{}, err
					}
					// Worker count is deliberately absent from the metadata:
					// it is a throughput knob, not part of the run, so every
					// sweep point's capture is byte-identical.
					frec, err = startFleetRecording(f, regions, out, map[string]string{
						"experiment": "F8",
						"seed":       fmt.Sprintf("%d", p.Seed),
						"regions":    fmt.Sprintf("%d", p.Regions),
						"days":       fmt.Sprintf("%d", p.Days),
						"faultscale": fmt.Sprintf("%g", p.FaultScale),
						"trunkscale": fmt.Sprintf("%g", p.TrunkScale),
					})
					if err != nil {
						out.Close()
						return row{}, err
					}
				}
				f.Run(sim.Time(p.Days) * sim.Day)
				links := 0
				for _, fr := range regions {
					links += len(fr.w.Net.Links)
				}
				rep := f.Report()
				if frec != nil {
					if _, err := frec.Close(rep); err != nil {
						out.Close()
						return row{}, err
					}
					if err := out.Close(); err != nil {
						return row{}, err
					}
				}
				return row{workers: w, rep: rep, trunks: f.Overlay.Trunks(), links: links}, nil
			},
		}
	}
	rows, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	base := rows[0].rep.Fingerprint()
	for _, rw := range rows[1:] {
		if fp := rw.rep.Fingerprint(); fp != base {
			return nil, fmt.Errorf("F8: workers=%d fingerprint %016x != workers=%d fingerprint %016x — sharded run is not deterministic",
				rw.workers, fp, rows[0].workers, base)
		}
	}
	tab := &metrics.Table{
		Title: "F8: fleet scale-out — region-sharded simulation by shard workers",
		Cols: []string{"workers", "epochs", "cross_events", "events_fired",
			"xfer_granted", "fleet_tickets", "trunk_repairs", "overlay_avail", "fingerprint"},
		Notes: []string{
			fmt.Sprintf("%d regions x %d links = %d links fleet-wide; %d overlay trunks",
				p.Regions, p.LinksPerRegion(), rows[0].links, rows[0].trunks),
			fmt.Sprintf("%d simulated days, region fault acceleration x%g, trunk x%g",
				p.Days, p.FaultScale, p.TrunkScale),
			"identical fingerprints across the sweep are enforced: the epoch barrier",
			"makes worker count a pure throughput knob, never a results knob",
		},
	}
	for _, rw := range rows {
		tab.AddRow(rw.workers, rw.rep.Epochs, rw.rep.Exchanged, rw.rep.Fired,
			rw.rep.Stats.TransfersGranted, rw.rep.Stats.TicketsOpened,
			rw.rep.TrunkRepairs, fmt.Sprintf("%.6f", rw.rep.OverlayAvail),
			fmt.Sprintf("%016x", base))
	}
	return tab, nil
}
