package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// TestChaosInvariants storms the control plane with adversarial injections
// — bursts of simultaneous faults across every cause class, including
// during in-flight repairs of neighbours — and checks global invariants at
// the end: no stuck machinery, no leaked drains, conservation of tickets.
func TestChaosInvariants(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		w, err := Build(Options{
			Seed: seed, BuildNet: SmallHall, Level: core.L4,
			Techs: 2, Robots: true, FaultScale: 5,
			MutateCore: func(c *core.Config) {
				c.PredictTrainAfter = 30 * sim.Day
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Repeated storms: every 20 days, break a wave of links with a
		// rotating cause.
		causes := faults.AllCauses
		wave := 0
		w.Eng.Every(5*sim.Day, 20*sim.Day, "chaos-storm", func(sim.Time) {
			c := causes[wave%len(causes)]
			wave++
			n := 0
			for i, l := range w.Net.Links {
				if (i+wave)%4 != 0 || n >= 10 {
					continue
				}
				st := w.Inj.State(l.ID)
				if st.Cause != faults.None || st.InRepair {
					continue
				}
				// Causes that do not apply to this medium will be rejected
				// by the model; emulate an operator choosing valid targets.
				switch c {
				case faults.Contamination:
					if !l.HasSeparableFiber() {
						continue
					}
				case faults.Oxidation, faults.FirmwareHang, faults.XcvrDead:
					if !l.Cable.Class.NeedsTransceiver() {
						continue
					}
				}
				w.Inj.InduceFault(l, c)
				n++
			}
		})
		w.Run(200 * sim.Day)

		sum := w.Store.Summarize()
		if sum.Total == 0 {
			t.Fatal("chaos produced no tickets")
		}
		open := sum.Total - sum.Resolved - sum.Cancelled
		if open > 3 {
			t.Fatalf("seed %d: %d tickets still open after the dust settled", seed, open)
		}
		// Drain conservation: router drains == drains held by work items.
		if w.Router.DrainedCount() != w.Ctrl.HeldDrains() {
			t.Fatalf("seed %d: drain leak: router=%d held=%d",
				seed, w.Router.DrainedCount(), w.Ctrl.HeldDrains())
		}
		// No link left in the InRepair limbo without an active ticket.
		for _, l := range w.Net.Links {
			st := w.Inj.State(l.ID)
			if st.InRepair {
				tk := w.Store.OpenFor(l.ID)
				if tk == nil || (tk.Status != ticket.Active && tk.Status != ticket.Assigned) {
					t.Fatalf("seed %d: link %s stuck in repair without active work", seed, l.Name())
				}
			}
		}
		// Robots and technicians all get released eventually (any still
		// busy must be on one of the few open tickets).
		busyUnits := 0
		for _, u := range w.Fleet.Units() {
			if !u.Available() {
				busyUnits++
			}
		}
		if busyUnits > open+1 {
			t.Fatalf("seed %d: %d units busy with only %d open tickets", seed, busyUnits, open)
		}
		// Availability stayed sane despite the abuse.
		if a := w.Ledger.FleetAvailability(); a < 0.8 || a > 1 {
			t.Fatalf("seed %d: availability %v", seed, a)
		}
	}
}

// TestChaosDeterminism: the same chaos schedule replays identically.
func TestChaosDeterminism(t *testing.T) {
	run := func() (int, int, float64) {
		w, err := Build(Options{
			Seed: 9, BuildNet: SmallHall, Level: core.L3,
			Techs: 2, Robots: true, FaultScale: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Eng.Every(3*sim.Day, 7*sim.Day, "chaos", func(sim.Time) {
			for _, l := range w.Net.SwitchLinks()[:4] {
				st := w.Inj.State(l.ID)
				if st.Cause == faults.None && !st.InRepair && l.Cable.Class.NeedsTransceiver() {
					w.Inj.InduceFault(l, faults.Oxidation)
					break
				}
			}
		})
		w.Run(90 * sim.Day)
		sum := w.Store.Summarize()
		return sum.Total, sum.Resolved, w.Ledger.FleetAvailability()
	}
	t1, r1, a1 := run()
	t2, r2, a2 := run()
	if t1 != t2 || r1 != r2 || a1 != a2 {
		t.Fatalf("chaos runs diverged: (%d,%d,%v) vs (%d,%d,%v)", t1, r1, a1, t2, r2, a2)
	}
}
