package scenario

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// TestActuatorChaosFixedSeedReproduces is the determinism acceptance test
// for the fault-injection layer: with chaos enabled at a fixed seed, two
// runs must be byte-identical — every stall, lost report, and watchdog
// firing replays exactly. All injection draws come from the dedicated
// "execchaos" stream, so nothing here may perturb the other streams either.
func TestActuatorChaosFixedSeedReproduces(t *testing.T) {
	opts := Options{
		Seed:       23,
		Level:      core.L3,
		Robots:     true,
		Techs:      2,
		FaultScale: 20,
		Chaos:      faults.ScaledExecChaos(0.3),
	}
	run := func() (digest [32]byte, injected, fires int) {
		w, err := Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		var stream strings.Builder
		w.Bus.Tap(func(ev bus.Event) { fmt.Fprintln(&stream, ev.String()) })
		w.Run(30 * sim.Day)
		for _, e := range w.Ctrl.Journal(0) {
			fmt.Fprintln(&stream, e.String())
		}
		return sha256.Sum256([]byte(stream.String())),
			w.ChaosStats().Injected(), w.Ctrl.Stats().WatchdogFires
	}
	d1, inj1, f1 := run()
	d2, inj2, f2 := run()
	if inj1 == 0 {
		t.Fatal("chaos at rate 0.3 injected nothing in 30 accelerated days")
	}
	if f1 == 0 {
		t.Fatal("no watchdog fired despite injected stalls")
	}
	if d1 != d2 || inj1 != inj2 || f1 != f2 {
		t.Fatalf("chaos runs diverge at a fixed seed: injected %d vs %d, fires %d vs %d",
			inj1, inj2, f1, f2)
	}
}

// TestActuatorChaosNeverWedges is the headline invariant of the hardened
// Act stage: even with half of all robot dispatches misbehaving, every
// ticket keeps making progress — resolved, cancelled, or still being
// retried with resources accounted for. No stalled robot may strand a
// drain, an operator, or a ticket.
func TestActuatorChaosNeverWedges(t *testing.T) {
	w, err := Build(Options{
		Seed:       11,
		Level:      core.L3,
		Robots:     true,
		Techs:      2,
		FaultScale: 20,
		Chaos:      faults.ScaledExecChaos(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(90 * sim.Day)

	cs := w.ChaosStats()
	if cs.Stalls == 0 || cs.LostOutcomes == 0 {
		t.Fatalf("chaos mix did not exercise the hard failures: %+v", cs)
	}
	st := w.Ctrl.Stats()
	if st.WatchdogFires == 0 {
		t.Fatalf("no watchdog fires against %d injections", cs.Injected())
	}
	var total, resolved, cancelled int
	for _, tk := range w.Store.All() {
		total++
		switch tk.Status {
		case ticket.Resolved:
			resolved++
		case ticket.Cancelled:
			cancelled++
		}
	}
	if total == 0 || resolved == 0 {
		t.Fatalf("tickets: %d total, %d resolved", total, resolved)
	}
	// The overwhelming majority must close even under heavy actuator chaos;
	// a wedge shows up here as a growing open backlog.
	if open := total - resolved - cancelled; open > total/4 {
		t.Fatalf("%d of %d tickets open after 90 days of chaos", open, total)
	}
	// Every drain is held by an in-flight work item — watchdog force-fails
	// released theirs.
	if w.Router.DrainedCount() != w.Ctrl.HeldDrains() {
		t.Fatalf("leaked drains: router=%d held=%d", w.Router.DrainedCount(), w.Ctrl.HeldDrains())
	}
}
