package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/flightrec"
	"repro/internal/sim"
)

// modelDigest flattens everything the experiments read out of a world into
// one comparable string. Unlike worldDigest it excludes Eng.Fired(): the
// snapshot ticker legitimately adds engine events, and the guarantee is
// about model outputs.
func modelDigest(w *World) string {
	sum := w.Store.Summarize()
	st := w.Ctrl.Stats()
	return fmt.Sprintf("%+v %+v %.12f %.12f %.12f %d",
		sum, st, w.Ledger.FleetAvailability(), w.Ledger.DownLinkHours(),
		w.Ledger.DegradedLinkHours(), w.ChaosStats().Injected())
}

// TestRecordingDoesNotPerturbRun is the opt-in guarantee: a recorded run
// (taps + snapshot ticker attached) must produce exactly the model outputs
// of an unrecorded one — recording is an observer, never a participant.
func TestRecordingDoesNotPerturbRun(t *testing.T) {
	opts := Options{Seed: 11, BuildNet: SmallHall, Level: core.L3,
		Techs: 2, Robots: true, FaultScale: 30}
	plain, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(30 * sim.Day)

	recorded, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := recorded.StartRecording(&buf, map[string]string{"seed": "11"}, 6*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	recorded.Run(30 * sim.Day)
	if _, err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if d1, d2 := modelDigest(plain), modelDigest(recorded); d1 != d2 {
		t.Errorf("recording perturbed the run:\nplain    %s\nrecorded %s", d1, d2)
	}
}

// TestWorldRecordingReplays is the tentpole acceptance for single-engine
// worlds: replaying the written bytes reproduces the live summary
// fingerprint without re-simulating, and re-recording the same seed yields
// byte-identical files.
func TestWorldRecordingReplays(t *testing.T) {
	record := func() (*flightrec.Summary, []byte) {
		w, err := Build(Options{Seed: 3, BuildNet: SmallHall, Level: core.L3,
			Techs: 2, Robots: true, FaultScale: 30})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rec, err := w.StartRecording(&buf, map[string]string{"seed": "3"}, 6*sim.Hour)
		if err != nil {
			t.Fatal(err)
		}
		w.Run(30 * sim.Day)
		live, err := rec.Close()
		if err != nil {
			t.Fatal(err)
		}
		return live, buf.Bytes()
	}
	live, raw := record()
	res, err := flightrec.Replay(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match() {
		t.Fatalf("replay fingerprint %016x != trailer %016x",
			res.Summary.Fingerprint(), res.Trailer.Fingerprint)
	}
	if res.Summary.Fingerprint() != live.Fingerprint() {
		t.Fatalf("replay fingerprint %016x != live %016x",
			res.Summary.Fingerprint(), live.Fingerprint())
	}
	if res.Summary.Render() != live.Render() {
		t.Error("replayed summary render differs from live render")
	}
	if live.Events() == 0 {
		t.Error("recording captured no events")
	}
	_, raw2 := record()
	if !bytes.Equal(raw, raw2) {
		t.Error("same-seed re-record produced different bytes")
	}
}

// TestFleetRecordingReplays covers the sharded path: the per-shard taps
// merged at the epoch barrier must replay to the live report — the F8
// record→replay acceptance — and the recording must be byte-identical at
// any worker count, since barrier order is worker-independent.
func TestFleetRecordingReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet recording differential is not a -short test")
	}
	p := DefaultFleetParams(true)
	run := func(workers int) (*fleet.Report, []byte) {
		f, regions, err := BuildFleet(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		frec, err := startFleetRecording(f, regions, &buf, map[string]string{"seed": fmt.Sprint(p.Seed)})
		if err != nil {
			t.Fatal(err)
		}
		f.Run(sim.Time(p.Days) * sim.Day)
		rep := f.Report()
		if _, err := frec.Close(rep); err != nil {
			t.Fatal(err)
		}
		return rep, buf.Bytes()
	}
	rep1, raw1 := run(1)
	rep2, raw2 := run(2)
	if rep1.Fingerprint() != rep2.Fingerprint() {
		t.Fatalf("worker sweep broke determinism: %016x vs %016x",
			rep1.Fingerprint(), rep2.Fingerprint())
	}
	if !bytes.Equal(raw1, raw2) {
		d, err := flightrec.Diff(bytes.NewReader(raw1), bytes.NewReader(raw2))
		t.Fatalf("workers=1 vs workers=2 recordings are not byte-identical (diff %v, err %v)", d, err)
	}

	res, err := flightrec.Replay(bytes.NewReader(raw1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match() {
		t.Fatalf("fleet replay fingerprint %016x != trailer %016x",
			res.Summary.Fingerprint(), res.Trailer.Fingerprint)
	}
	back, err := ReplayFleetReport(res.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != rep1.Fingerprint() {
		t.Fatalf("report rebuilt from recording fingerprints %016x, live %016x",
			back.Fingerprint(), rep1.Fingerprint())
	}
	if back.Render() != rep1.Render() {
		t.Error("report rebuilt from recording renders differently from live")
	}
}

// TestR7FromRecordingsMatchesLive is the experiments-harness acceptance:
// running R7 with RecordDir set, then regenerating the table from the
// recordings alone, must render byte-identically.
func TestR7FromRecordingsMatchesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("R7 record/regenerate differential is not a -short test")
	}
	dir := t.TempDir()
	p := RepairParams{Duration: 30 * sim.Day, FaultScale: 30,
		Seeds: []uint64{7}, Quick: true, RecordDir: dir}
	live, err := R7ActuatorChaos(Serial(), p)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "R7-*.fr"))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(r7Levels) * len(r7Rates) * len(p.Seeds); len(files) != want {
		t.Fatalf("R7 wrote %d recordings, want %d", len(files), want)
	}
	replayed, err := R7FromRecordings(dir)
	if err != nil {
		t.Fatal(err)
	}
	if live.String() != replayed.String() {
		t.Errorf("table regenerated from recordings differs from live:\nlive:\n%s\nreplayed:\n%s",
			live, replayed)
	}
}

// TestR7FromRecordingsRejectsCorruption: a truncated capture must fail the
// replay fingerprint check, not silently skew the regenerated table.
func TestR7FromRecordingsRejectsTruncation(t *testing.T) {
	if testing.Short() {
		t.Skip("depends on the non-short R7 recordings")
	}
	dir := t.TempDir()
	p := RepairParams{Duration: 10 * sim.Day, FaultScale: 30,
		Seeds: []uint64{7}, Quick: true, RecordDir: dir}
	if _, err := R7ActuatorChaos(Serial(), p); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "R7-*.fr"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := R7FromRecordings(dir); err == nil {
		t.Fatal("R7FromRecordings accepted a truncated recording")
	}
}
