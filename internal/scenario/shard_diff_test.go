package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// worldDigest condenses everything observable about a finished world into a
// deterministic string: ground-truth fault statistics, the full ticket
// summary, ledger availability, and the engine's event count. Two worlds
// that executed the same events in the same order digest identically.
func worldDigest(w *World) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fired=%d now=%v\n", w.Eng.Fired(), w.Eng.Now())
	fmt.Fprintf(&b, "faults=%+v\n", w.Inj.Stats())
	fmt.Fprintf(&b, "tickets=%+v\n", w.Store.Summarize())
	fmt.Fprintf(&b, "avail=%.9f\n", w.Ledger.FleetAvailability())
	fmt.Fprintf(&b, "robots=%d/%d\n", w.Fleet.AvailableUnits(), len(w.Fleet.Units()))
	return b.String()
}

// TestShardedWorldMatchesPlainBuild is the refactor's ground-truth pin: a
// world built on shard 0 of a one-shard MultiEngine (whose seed derivation
// keeps the root seed) is byte-identical to the same world on a plain
// Engine — the sharded path adds no hidden behavior. Exercised across
// automation levels and seeds, exactly the worlds the suite uses.
func TestShardedWorldMatchesPlainBuild(t *testing.T) {
	const days = 30
	for _, level := range []core.Level{core.L0, core.L3} {
		for _, seed := range []uint64{11, 23} {
			opts := func(eng *sim.Engine) Options {
				return Options{
					Seed: seed, Eng: eng, BuildNet: SmallHall,
					Level: level, Techs: 2, Robots: level >= core.L1,
					FaultScale: 30,
				}
			}
			plain, err := Build(opts(nil))
			if err != nil {
				t.Fatalf("plain build: %v", err)
			}
			plain.Run(days * sim.Day)

			me := sim.NewMultiEngine(seed, 1, 15*sim.Minute, 1)
			sharded, err := Build(opts(me.Shard(0).Engine()))
			if err != nil {
				t.Fatalf("sharded build: %v", err)
			}
			me.RunUntil(days * sim.Day)

			if p, s := worldDigest(plain), worldDigest(sharded); p != s {
				t.Fatalf("level=%v seed=%d: sharded world diverged from plain build\n--- plain\n%s--- sharded\n%s",
					level, seed, p, s)
			}
		}
	}
}

// TestFleetScaleOutDeterminism runs the quick F8 experiment, whose run
// function itself enforces fingerprint equality across the worker sweep on
// full datacenter worlds (topology, faults, telemetry, pipeline, robots,
// humans per region — not the toy regions of package fleet).
func TestFleetScaleOutDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet scale-out differential is not a -short test")
	}
	p := DefaultFleetParams(true)
	p.Workers = []int{1, 2, 4}
	tab, err := F8FleetScale(Serial(), p)
	if err != nil {
		t.Fatalf("F8 quick: %v", err)
	}
	if got := len(tab.Rows); got != 3 {
		t.Fatalf("F8 table has %d rows, want 3", got)
	}
}

// TestFleetRegionAdapterLendReceive pins the scenario-side Region adapter:
// lending removes exactly one idle unit and receiving deploys a hall-scope
// unit under the transfer name.
func TestFleetRegionAdapterLendReceive(t *testing.T) {
	w, err := Build(Options{Seed: 5, BuildNet: SmallHall, Level: core.L3, Techs: 1, Robots: true})
	if err != nil {
		t.Fatal(err)
	}
	fr := &fleetRegion{w: w}
	before := len(w.Fleet.Units())
	if before == 0 {
		t.Fatal("world deployed no robots")
	}
	if !fr.LendUnit() {
		t.Fatal("LendUnit failed with idle units present")
	}
	if got := len(w.Fleet.Units()); got != before-1 {
		t.Fatalf("lend left %d units, want %d", got, before-1)
	}
	fr.ReceiveUnit("xfer-0-to-1-n1")
	if got := len(w.Fleet.Units()); got != before {
		t.Fatalf("receive left %d units, want %d", got, before)
	}
	last := w.Fleet.Units()[before-1]
	if last.Name != "xfer-0-to-1-n1" {
		t.Fatalf("received unit named %q", last.Name)
	}
	if fr.Received != 1 {
		t.Fatalf("Received = %d, want 1", fr.Received)
	}
	s := fr.Summary(0)
	if s.Links == 0 || s.RobotsTotal != before {
		t.Fatalf("summary %+v inconsistent with world", s)
	}
}
