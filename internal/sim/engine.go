package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
)

// event is a scheduled callback in the simulation. Event structs are pooled:
// once an event fires or is cancelled its struct returns to the engine's
// free list and is reused by a later Schedule, so steady-state scheduling
// allocates nothing. External code holds Handles, never event pointers.
type event struct {
	at     Time
	seq    uint64 // tie-break: schedule order within the same instant
	name   string
	fn     func()
	index  int // heap index, -1 when not queued
	engine *Engine
}

// Handle refers to a scheduled event. It is a small comparable value, safe
// to copy and to keep after the event has fired: because event structs are
// recycled, the handle captures the scheduling sequence number and every
// operation first checks it, so a stale handle to a reused struct is inert
// (Pending reports false, Cancel does nothing).
type Handle struct {
	ev  *event
	seq uint64
}

// Pending reports whether the referenced event is still queued to fire.
// The zero Handle reports false.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.seq == h.seq && h.ev.index >= 0
}

// Cancel removes the event from the queue. It returns true if the event was
// still pending, false if it had already fired, been cancelled, or the
// handle is stale or zero.
func (h Handle) Cancel() bool {
	if !h.Pending() {
		return false
	}
	ev := h.ev
	heap.Remove(&ev.engine.queue, ev.index)
	ev.index = -1
	ev.engine.recycle(ev)
	return true
}

// eventQueue is a min-heap ordered by (at, seq) so that simultaneous events
// fire in the order they were scheduled — the property that makes runs
// deterministic.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Tracer receives a notification immediately before each event fires.
// It is intended for debugging and for building event-trace golden tests.
type Tracer func(at Time, name string)

// Engine is a deterministic discrete-event simulation engine. It is not safe
// for concurrent use: all model code runs single-threaded inside Run, which
// is what makes simulated years cheap and runs reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	seed   uint64
	rngs   map[string]*Stream
	tracer Tracer
	fired  uint64
	free   []*event // recycled event structs
}

// NewEngine returns an engine at the simulation epoch whose named RNG
// streams are derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{seed: seed, rngs: make(map[string]*Stream)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the root seed the engine was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekNext returns the instant of the earliest pending event. The second
// result is false when the queue is empty. The shard coordinator uses this
// to compute each epoch's horizon without disturbing the queue.
//
//selfmaint:hotpath
func (e *Engine) PeekNext() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// SetTracer installs fn to observe every fired event; nil disables tracing.
func (e *Engine) SetTracer(fn Tracer) { e.tracer = fn }

// recycle returns a fired or cancelled event struct to the free list. The
// struct keeps its seq until reuse, so outstanding Handles stay valid-but-
// inert: their seq matches but index is -1.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.name = ""
	e.free = append(e.free, ev)
}

// Schedule queues fn to run at instant at. Scheduling in the past (before
// Now) panics: it is always a model bug, and silently reordering time would
// corrupt every downstream statistic. name is used only for diagnostics.
//
//selfmaint:hotpath
func (e *Engine) Schedule(at Time, name string, fn func()) Handle {
	if at < e.now {
		//lint:allow hotpathalloc panic path only; a past-scheduling bug aborts the run, formatting cost is irrelevant
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		//lint:allow hotpathalloc free-list miss; amortized away once the pool warms up (steady state reuses structs)
		ev = &event{}
	}
	*ev = event{at: at, seq: e.seq, name: name, fn: fn, engine: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev, seq: ev.seq}
}

// After queues fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d Time, name string, fn func()) Handle {
	return e.Schedule(e.now+d, name, fn)
}

// Ticker repeatedly reschedules a callback at a fixed interval until stopped.
type Ticker struct {
	h       Handle
	stopped bool
}

// Stop cancels future ticks. It is safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Every schedules fn to run every interval, first at start. The callback
// receives the tick instant. interval must be positive.
func (e *Engine) Every(start Time, interval Time, name string, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: ticker %q with non-positive interval %v", name, interval))
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		at := e.now
		if !t.stopped {
			t.h = e.Schedule(at+interval, name, tick)
		}
		fn(at)
	}
	t.h = e.Schedule(start, name, tick)
	return t
}

// Step fires the single earliest pending event, advancing the clock to its
// instant. It reports whether an event was fired.
//
//selfmaint:hotpath
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.fired++
	if e.tracer != nil {
		e.tracer(ev.at, ev.name)
	}
	fn := ev.fn
	// Recycle before running fn: the struct may be reused by events fn
	// schedules; any handle to this firing gets a fresh seq mismatch.
	e.recycle(ev)
	fn()
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// would fire strictly after deadline, then advances the clock to deadline if
// the deadline is later than the last event fired.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if deadline != Forever && deadline > e.now {
		e.now = deadline
	}
}

// Run fires events until the queue is empty.
func (e *Engine) Run() { e.RunUntil(Forever) }

// RNG returns the named pseudo-random stream, creating it on first use.
// Streams are independent of one another and of scheduling order: the stream
// named "faults/flap" yields the same sequence regardless of how many draws
// other streams have made, which keeps subsystems statistically decoupled
// across configuration changes.
func (e *Engine) RNG(name string) *Stream {
	if s, ok := e.rngs[name]; ok {
		return s
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	derived := h.Sum64()
	s := &Stream{Rand: rand.New(rand.NewPCG(e.seed, derived)), name: name}
	e.rngs[name] = s
	return s
}
