// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue with stable ordering, named pseudo-random
// number streams, and the probability distributions used by the rest of the
// selfmaint framework.
//
// All simulated subsystems (failure processes, robots, technicians, the
// maintenance controller) are driven by a single Engine. Determinism is a
// design requirement: running the same scenario with the same seed must
// produce an identical event trace, so experiments are reproducible and
// regressions are diffable.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, measured in nanoseconds since the
// start of the simulation. The zero value is the simulation epoch.
//
// Time is deliberately distinct from time.Time: simulations span years of
// virtual time and have no relationship to the wall clock.
type Time int64

// Common virtual-time unit helpers. A simulated Day is exactly 24 hours;
// simulations do not observe DST or leap seconds.
const (
	Nanosecond  = Time(time.Nanosecond)
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)
	Hour        = Time(time.Hour)
	Day         = 24 * Hour
	Week        = 7 * Day
	Year        = 365 * Day
)

// Forever is an instant later than any instant reachable in practice.
// It is used as the deadline for unbounded Run calls.
const Forever = Time(1<<63 - 1)

// At returns the instant d after the epoch.
func At(d time.Duration) Time { return Time(d) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours returns t as a floating-point number of hours since the epoch.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// Days returns t as a floating-point number of days since the epoch.
func (t Time) Days() float64 { return float64(t) / float64(Day) }

// Duration returns t as a time.Duration offset from the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t as "[Nd ]HH:MM:SS.mmm" of virtual time, e.g.
// "3d 07:15:02.250". The format is fixed-width enough to align in traces.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	d := t / Day
	t -= d * Day
	h := t / Hour
	t -= h * Hour
	m := t / Minute
	t -= m * Minute
	s := t / Second
	ms := (t - s*Second) / Millisecond
	if d > 0 {
		return fmt.Sprintf("%s%dd %02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
	}
	return fmt.Sprintf("%s%02d:%02d:%02d.%03d", neg, h, m, s, ms)
}
