package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// MultiEngine coordinates several region-sharded Engines under one
// deterministic clock. Each shard owns an independent Engine (its own event
// heap, free list, and RNG stream family), so a fleet of datacenters can be
// simulated with every region draining its local events in parallel while
// the run stays byte-identical for a fixed seed at any worker count.
//
// Time advances in epochs. Every epoch the coordinator computes
//
//	horizon = min over shards of next-event time + lookahead
//
// and each shard drains its local heap up to the horizon concurrently.
// Cross-shard effects are never applied directly: a shard posts them with
// Shard.Send, which buffers into the shard's outbox, and the coordinator
// exchanges outboxes at the epoch barrier in (shard, send-order) sequence.
// Because every send must be scheduled at least `lookahead` after the
// sending instant, and the first event of the epoch fires no earlier than
// the min next-event time, a delivery can never land before the horizon —
// no shard ever observes an out-of-order foreign event, which is the whole
// correctness argument (the classic conservative bounded-lag window).
//
// Determinism follows from three properties: the epoch schedule is a pure
// function of simulation state (never of worker count), shards are mutated
// only by their own goroutine between barriers, and the exchange applies
// cross events in (shard, seq) order so destination engines assign the same
// tie-break sequence numbers every run.
type MultiEngine struct {
	shards    []*Shard
	lookahead Time
	workers   int
	now       Time // barrier clock: the horizon of the last completed epoch
	epochs    uint64
	exchanged uint64
	onBarrier func(epoch uint64, now Time)
}

// Shard is one region's slot in a MultiEngine: its engine plus the outbox
// used for cross-shard sends. A Shard's engine must only be driven by the
// coordinator and only touched by model code running on that shard; the
// selfmaintlint crossshard analyzer enforces that Engine() escapes are
// build-time wiring only.
type Shard struct {
	id     int
	eng    *Engine
	me     *MultiEngine
	outbox []crossEvent
	sent   uint64
}

// crossEvent is one buffered cross-shard delivery.
type crossEvent struct {
	dst  int
	at   Time
	name string
	fn   func()
}

// ShardSeed derives the root seed for one shard of a sharded world. Shard 0
// keeps the root seed unchanged — a one-shard MultiEngine is therefore
// seed-for-seed identical to a plain Engine — and higher shards get
// splitmix64-scrambled seeds, so every region draws from an independent RNG
// stream family.
func ShardSeed(root uint64, shard int) uint64 {
	if shard == 0 {
		return root
	}
	z := root ^ (uint64(shard) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewMultiEngine creates a coordinator with the given number of shards.
// lookahead is the minimum cross-shard delivery delay and must be positive:
// it is the window width that lets shards run ahead of each other safely.
// workers bounds how many shards drain concurrently per epoch; 0 means all
// host cores, 1 drains shards inline in shard order (the serial escape
// hatch — output is identical either way).
func NewMultiEngine(seed uint64, shards int, lookahead Time, workers int) *MultiEngine {
	if shards <= 0 {
		panic(fmt.Sprintf("sim: multi-engine with %d shards", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: multi-engine lookahead %v must be positive", lookahead))
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	me := &MultiEngine{lookahead: lookahead, workers: workers}
	me.shards = make([]*Shard, shards)
	for i := range me.shards {
		me.shards[i] = &Shard{id: i, eng: NewEngine(ShardSeed(seed, i)), me: me}
	}
	return me
}

// Shards returns the shard count.
func (me *MultiEngine) Shards() int { return len(me.shards) }

// Workers returns the epoch worker bound.
func (me *MultiEngine) Workers() int { return me.workers }

// Now returns the barrier clock: the horizon of the last completed epoch.
func (me *MultiEngine) Now() Time { return me.now }

// Lookahead returns the minimum cross-shard delivery delay.
func (me *MultiEngine) Lookahead() Time { return me.lookahead }

// Epochs returns how many epoch barriers have completed.
func (me *MultiEngine) Epochs() uint64 { return me.epochs }

// Exchanged returns how many cross-shard events have been delivered.
func (me *MultiEngine) Exchanged() uint64 { return me.exchanged }

// Fired sums events executed across all shards.
func (me *MultiEngine) Fired() uint64 {
	var n uint64
	for _, s := range me.shards {
		n += s.eng.Fired()
	}
	return n
}

// SetBarrierHook installs fn to run on the coordinator's goroutine at the
// end of every epoch barrier — after all shards have drained to the horizon
// and the exchange has been applied, while no shard goroutine is running.
// Observers (the flight recorder's merge point) use it to drain per-shard
// buffers in a deterministic order. The hook must not schedule events or
// touch shard model state; it sees epoch numbers and horizons only, both of
// which are pure functions of simulation state, never of worker count.
func (me *MultiEngine) SetBarrierHook(fn func(epoch uint64, now Time)) {
	me.onBarrier = fn
}

// Shard returns shard i. Model code must not use this to reach a foreign
// shard's engine mid-run; it exists for build-time wiring (the crossshard
// analyzer audits every use outside package sim).
func (me *MultiEngine) Shard(i int) *Shard { return me.shards[i] }

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Sent returns how many cross-shard events this shard has posted.
func (s *Shard) Sent() uint64 { return s.sent }

// Engine returns the shard's local engine, for build-time wiring of the
// region model that lives on this shard. Reaching through it into another
// shard mid-run breaks the isolation invariant (crossshard analyzer).
func (s *Shard) Engine() *Engine { return s.eng }

// Send posts fn to run on shard dst at the sending shard's current time
// plus delay. delay must be at least the coordinator's lookahead — that
// bound is what guarantees the destination has not advanced past the
// delivery instant — and shorter delays panic, as they are always a model
// bug. Sends are exchanged at the next epoch barrier in (shard, send-order)
// sequence, so delivery order is deterministic at any worker count. fn runs
// on the destination shard's goroutine and must touch only destination
// state (plus any values captured at send time).
func (s *Shard) Send(dst int, delay Time, name string, fn func()) {
	if dst < 0 || dst >= len(s.me.shards) {
		panic(fmt.Sprintf("sim: cross-shard send %q to shard %d of %d", name, dst, len(s.me.shards)))
	}
	if delay < s.me.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send %q with delay %v below lookahead %v", name, delay, s.me.lookahead))
	}
	s.sent++
	s.outbox = append(s.outbox, crossEvent{dst: dst, at: s.eng.Now() + delay, name: name, fn: fn})
}

// RunUntil advances the sharded world to deadline: epochs of parallel local
// drains separated by deterministic exchange barriers, until no shard has
// an event at or before deadline. All shard clocks end at deadline (when it
// is not Forever), exactly like Engine.RunUntil.
func (me *MultiEngine) RunUntil(deadline Time) {
	// Apply sends posted outside any epoch (build-time wiring) so they are
	// visible to the first horizon computation.
	me.exchange()
	for {
		tmin := Forever
		for _, s := range me.shards {
			if at, ok := s.eng.PeekNext(); ok && at < tmin {
				tmin = at
			}
		}
		if tmin == Forever || tmin > deadline {
			break
		}
		horizon := tmin + me.lookahead
		if horizon < tmin { // overflow
			horizon = Forever
		}
		if horizon > deadline {
			horizon = deadline
		}
		me.epochs++
		me.runEpoch(horizon)
		me.exchange()
		me.now = horizon
		if me.onBarrier != nil {
			me.onBarrier(me.epochs, me.now)
		}
	}
	if deadline != Forever {
		for _, s := range me.shards {
			s.eng.RunUntil(deadline)
		}
		if deadline > me.now {
			me.now = deadline
		}
	} else {
		// Queues are empty; settle every clock at the last barrier.
		for _, s := range me.shards {
			s.eng.RunUntil(me.now)
		}
	}
}

// Run advances until every shard's queue is empty.
func (me *MultiEngine) Run() { me.RunUntil(Forever) }

// runEpoch drains every shard up to horizon. Shards are partitioned
// round-robin across at most `workers` goroutines; with one worker (or one
// shard) everything runs inline on the caller's goroutine.
func (me *MultiEngine) runEpoch(horizon Time) {
	if me.workers == 1 || len(me.shards) == 1 {
		for _, s := range me.shards {
			s.eng.RunUntil(horizon)
		}
		return
	}
	w := me.workers
	if w > len(me.shards) {
		w = len(me.shards)
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < len(me.shards); i += w {
				me.shards[i].eng.RunUntil(horizon)
			}
		}(k)
	}
	wg.Wait()
}

// exchange applies every buffered cross-shard event, iterating shards in id
// order and each outbox in send order — the (shard, seq) merge that keeps
// destination-engine tie-breaks identical at any worker count. It runs
// between epochs on the coordinator's goroutine, after the barrier, so it
// may touch every shard safely.
func (me *MultiEngine) exchange() {
	for _, s := range me.shards {
		for i := range s.outbox {
			c := &s.outbox[i]
			me.exchanged++
			me.shards[c.dst].eng.Schedule(c.at, c.name, c.fn)
		}
		for i := range s.outbox {
			s.outbox[i] = crossEvent{} // release fn closures
		}
		s.outbox = s.outbox[:0]
	}
}
