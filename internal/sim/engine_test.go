package sim

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{5 * Second, 1 * Second, 3 * Second, 2 * Second, 4 * Second} {
		at := at
		e.Schedule(at, "ev", func() { got = append(got, at) })
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if e.Now() != 5*Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, "same-instant", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(2*Second, "later", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(Second, "past", func() {})
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, "cancel-me", func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	if !ev.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestEventCancelMiddleOfQueue(t *testing.T) {
	e := NewEngine(1)
	var got []string
	a := e.Schedule(1*Second, "a", func() { got = append(got, "a") })
	b := e.Schedule(2*Second, "b", func() { got = append(got, "b") })
	c := e.Schedule(3*Second, "c", func() { got = append(got, "c") })
	_ = a
	b.Cancel()
	e.Run()
	if fmt.Sprint(got) != "[a c]" {
		t.Fatalf("got %v, want [a c]", got)
	}
	_ = c
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(10*Second, "outer", func() {
		e.After(5*Second, "inner", func() { at = e.Now() })
	})
	e.Run()
	if at != 15*Second {
		t.Fatalf("inner fired at %v, want 15s", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for i := 1; i <= 10; i++ {
		at := Time(i) * Second
		e.Schedule(at, "t", func() { fired = append(fired, at) })
	}
	e.RunUntil(5 * Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d, want 5", len(fired))
	}
	if e.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	// Deadline with no events still advances the clock.
	e2 := NewEngine(1)
	e2.RunUntil(Hour)
	if e2.Now() != Hour {
		t.Fatalf("empty RunUntil: Now = %v, want 1h", e2.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tk *Ticker
	tk = e.Every(0, Minute, "tick", func(at Time) {
		ticks = append(ticks, at)
		if len(ticks) == 5 {
			tk.Stop()
		}
	})
	e.RunUntil(Hour)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if at != Time(i)*Minute {
			t.Fatalf("tick %d at %v, want %v", i, at, Time(i)*Minute)
		}
	}
}

func TestTickerStopBeforeFirstTick(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.Every(Minute, Minute, "tick", func(Time) { n++ })
	tk.Stop()
	e.RunUntil(Hour)
	if n != 0 {
		t.Fatalf("stopped ticker fired %d times", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	trace := func(seed uint64) []string {
		e := NewEngine(seed)
		var out []string
		e.SetTracer(func(at Time, name string) {
			out = append(out, fmt.Sprintf("%v %s", at, name))
		})
		rng := e.RNG("load")
		var spawn func()
		spawn = func() {
			if e.Now() > 10*Minute {
				return
			}
			d := Time(rng.Exponential(30) * float64(Second))
			e.After(d, "work", spawn)
			e.After(d/2+Second, "half", func() {})
		}
		e.Schedule(0, "start", spawn)
		e.RunUntil(20 * Minute)
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different traces")
	}
	c := trace(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestRNGStreamsIndependentAndStable(t *testing.T) {
	e1 := NewEngine(7)
	a := e1.RNG("alpha")
	_ = a.Float64() // consume from alpha only
	b1 := e1.RNG("beta").Float64()

	e2 := NewEngine(7)
	b2 := e2.RNG("beta").Float64() // no alpha draws at all
	if b1 != b2 {
		t.Fatal("stream beta affected by draws on stream alpha")
	}
	if e1.RNG("alpha") != a {
		t.Fatal("RNG did not cache stream by name")
	}
}

// Property: whatever order events are scheduled in, they fire sorted by
// (time, scheduling order).
func TestEventOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine(1)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, off := range offsets {
			at := Time(off) * Millisecond
			i := i
			e.Schedule(at, "p", func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to
// fire, still in order.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(offsets []uint16, mask []bool) bool {
		e := NewEngine(1)
		firedCount := 0
		events := make([]Handle, len(offsets))
		for i, off := range offsets {
			events[i] = e.Schedule(Time(off)*Millisecond, "p", func() { firedCount++ })
		}
		cancelled := 0
		for i, ev := range events {
			if i < len(mask) && mask[i] {
				if ev.Cancel() {
					cancelled++
				}
			}
		}
		e.Run()
		return firedCount == len(offsets)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Stale handles to recycled event structs must be inert: Pending false,
// Cancel refused — even when the struct has been reused by a later event.
func TestStaleHandleIsInertAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	h := e.Schedule(Second, "first", func() { fired++ })
	e.Run()
	h2 := e.Schedule(2*Second, "second", func() { fired++ })
	if h.Pending() {
		t.Fatal("fired event still pending via stale handle")
	}
	if h.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if !h2.Pending() {
		t.Fatal("new event not pending")
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var h Handle
	if h.Pending() {
		t.Fatal("zero handle pending")
	}
	if h.Cancel() {
		t.Fatal("zero handle cancelled something")
	}
}

// The event free list makes steady-state scheduling allocation-free once
// the queue and free list have warmed up.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i)*Millisecond, "warm", fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.After(Millisecond, "steady", fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocated %.1f/op in steady state", allocs)
	}
}

// Step alone — the //selfmaint:hotpath event pump — must not allocate when
// draining a pre-built queue: popping, recycling and firing reuse pooled
// event structs.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i)*Millisecond, "warm", fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.After(Millisecond, "one", fn)
		if !e.Step() {
			t.Fatal("no event to step")
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocated %.1f/op in steady state", allocs)
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "00:00:00.000"},
		{90 * Minute, "01:30:00.000"},
		{3*Day + 7*Hour + 15*Minute + 2*Second + 250*Millisecond, "3d 07:15:02.250"},
		{-Hour, "-01:00:00.000"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := At(0).Add(3 * 3600 * 1e9)
	if a != 3*Hour {
		t.Fatalf("Add: got %v", a)
	}
	if d := (5 * Hour).Sub(2 * Hour); d.Hours() != 3 {
		t.Fatalf("Sub: got %v", d)
	}
	if !(Hour).Before(2 * Hour) {
		t.Fatal("Before failed")
	}
	if !(2 * Hour).After(Hour) {
		t.Fatal("After failed")
	}
	if (36 * Hour).Days() != 1.5 {
		t.Fatalf("Days: got %v", (36 * Hour).Days())
	}
	if (90 * Second).Seconds() != 90 {
		t.Fatalf("Seconds: got %v", (90 * Second).Seconds())
	}
	if (90 * Minute).Hours() != 1.5 {
		t.Fatalf("Hours: got %v", (90 * Minute).Hours())
	}
}

func TestNegativeIntervalTickerPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive ticker interval did not panic")
		}
	}()
	e.Every(0, 0, "bad", func(Time) {})
}

func newTestStream(seed uint64) *Stream {
	return &Stream{Rand: rand.New(rand.NewPCG(seed, 0xfeed)), name: "test"}
}

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000)*Microsecond, "bench", func() {})
		if e.Pending() > 10000 {
			e.RunUntil(e.Now() + Millisecond)
		}
	}
	e.Run()
}
