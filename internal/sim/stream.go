package sim

import (
	"math"
	"math/rand/v2"
)

// Stream is a named pseudo-random number stream. It embeds *rand.Rand, so
// all standard draws (Float64, IntN, Perm, ...) are available, and adds the
// derived draws the simulation models need.
type Stream struct {
	*rand.Rand
	name string
}

// Name returns the name the stream was created under.
func (s *Stream) Name() string { return s.name }

// Bernoulli returns true with probability p. p outside [0,1] is clamped.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exponential returns a draw from an exponential distribution with the
// given mean (not rate). mean must be positive.
func (s *Stream) Exponential(mean float64) float64 {
	return s.ExpFloat64() * mean
}

// Weibull returns a draw from a Weibull distribution with the given shape k
// and scale lambda. shape < 1 models infant mortality, shape == 1 is
// exponential, and shape > 1 models wear-out — the standard menu for
// hardware lifetime modelling.
func (s *Stream) Weibull(shape, scale float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// LogNormal returns a draw whose logarithm is normal with parameters mu and
// sigma. Used for human task times, which are right-skewed.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Pareto returns a draw from a Pareto distribution with minimum xm and tail
// index alpha. Heavy-tailed draws model flow sizes and outlier repairs.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Triangular returns a draw from a triangular distribution on [lo, hi] with
// the given mode. It is the usual "expert estimate" distribution for task
// durations with min/likely/max bounds.
func (s *Stream) Triangular(lo, mode, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	u := s.Float64()
	c := (mode - lo) / (hi - lo)
	if u < c {
		return lo + math.Sqrt(u*(hi-lo)*(mode-lo))
	}
	return hi - math.Sqrt((1-u)*(hi-lo)*(hi-mode))
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
func (s *Stream) Jitter(base, frac float64) float64 {
	return base * (1 + frac*(2*s.Float64()-1))
}

// PickWeighted returns an index in [0, len(weights)) drawn proportionally to
// the weights. Non-positive weights are treated as zero; if all weights are
// zero it returns 0.
func (s *Stream) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
