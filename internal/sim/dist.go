package sim

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a one-dimensional probability distribution. Sample draws from it
// using the provided stream, so a Dist value is immutable, shareable
// configuration and all randomness flows through named engine streams.
type Dist interface {
	// Sample draws one value.
	Sample(s *Stream) float64
	// Mean returns the distribution's expectation (used for capacity
	// planning and sanity checks, not for sampling).
	Mean() float64
}

// Const is the degenerate distribution that always yields V.
type Const float64

// Sample implements Dist.
func (c Const) Sample(*Stream) float64 { return float64(c) }

// Mean implements Dist.
func (c Const) Mean() float64 { return float64(c) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(s *Stream) float64 { return u.Lo + (u.Hi-u.Lo)*s.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exp is the exponential distribution with the given MeanVal.
type Exp struct{ MeanVal float64 }

// Sample implements Dist.
func (e Exp) Sample(s *Stream) float64 { return s.Exponential(e.MeanVal) }

// Mean implements Dist.
func (e Exp) Mean() float64 { return e.MeanVal }

// Weibull is the Weibull distribution with Shape k and Scale lambda.
type Weibull struct{ Shape, Scale float64 }

// Sample implements Dist.
func (w Weibull) Sample(s *Stream) float64 { return s.Weibull(w.Shape, w.Scale) }

// Mean implements Dist. It uses the Gamma-function identity
// E[X] = scale * Gamma(1 + 1/shape).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// LogNormal is the log-normal distribution with log-space parameters Mu and
// Sigma.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(s *Stream) float64 { return s.LogNormal(l.Mu, l.Sigma) }

// Mean implements Dist.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Triangular is the triangular distribution on [Lo, Hi] with the given Mode.
type Triangular struct{ Lo, Mode, Hi float64 }

// Sample implements Dist.
func (t Triangular) Sample(s *Stream) float64 { return s.Triangular(t.Lo, t.Mode, t.Hi) }

// Mean implements Dist.
func (t Triangular) Mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

// Pareto is the Pareto distribution with minimum Xm and tail index Alpha.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p Pareto) Sample(s *Stream) float64 { return s.Pareto(p.Xm, p.Alpha) }

// Mean implements Dist. For Alpha <= 1 the mean is infinite; it returns +Inf.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Empirical draws uniformly (or weighted, if Weights is non-nil) from a
// fixed set of values — the shape used when calibrating against published
// trace statistics.
type Empirical struct {
	Values  []float64
	Weights []float64 // optional, same length as Values
}

// Sample implements Dist.
func (e Empirical) Sample(s *Stream) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	if len(e.Weights) == len(e.Values) {
		return e.Values[s.PickWeighted(e.Weights)]
	}
	return e.Values[s.IntN(len(e.Values))]
}

// Mean implements Dist.
func (e Empirical) Mean() float64 {
	if len(e.Values) == 0 {
		return 0
	}
	if len(e.Weights) == len(e.Values) {
		var sum, wsum float64
		for i, v := range e.Values {
			if e.Weights[i] > 0 {
				sum += v * e.Weights[i]
				wsum += e.Weights[i]
			}
		}
		if wsum == 0 {
			return 0
		}
		return sum / wsum
	}
	var sum float64
	for _, v := range e.Values {
		sum += v
	}
	return sum / float64(len(e.Values))
}

// Shifted adds a constant Offset to every draw of Base, clamping at Min.
// It models fixed setup costs on top of a random service time.
type Shifted struct {
	Base   Dist
	Offset float64
	Min    float64
}

// Sample implements Dist.
func (sh Shifted) Sample(s *Stream) float64 {
	v := sh.Base.Sample(s) + sh.Offset
	if v < sh.Min {
		return sh.Min
	}
	return v
}

// Mean implements Dist. The clamp at Min is ignored, which is acceptable for
// the configurations used here (Min is far below the mean).
func (sh Shifted) Mean() float64 { return sh.Base.Mean() + sh.Offset }

// Clamped restricts draws of Base to [Lo, Hi] by clamping (not rejection),
// preserving determinism in the number of stream draws per sample.
type Clamped struct {
	Base   Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (c Clamped) Sample(s *Stream) float64 {
	v := c.Base.Sample(s)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean implements Dist. It returns the unclamped mean clamped to [Lo, Hi],
// an approximation documented as such.
func (c Clamped) Mean() float64 {
	m := c.Base.Mean()
	if m < c.Lo {
		return c.Lo
	}
	if m > c.Hi {
		return c.Hi
	}
	return m
}

// SampleDuration draws from d, interpreting the value as seconds, and
// returns it as a virtual-time duration. Negative draws clamp to zero.
func SampleDuration(d Dist, s *Stream) Time {
	v := d.Sample(s)
	if v <= 0 {
		return 0
	}
	return Time(v * float64(Second))
}

// MeanDuration returns d's mean interpreted as seconds of virtual time.
func MeanDuration(d Dist) Time {
	v := d.Mean()
	if v <= 0 {
		return 0
	}
	return Time(v * float64(Second))
}

// Quantiles returns the q-quantiles (each in [0,1]) of n Monte-Carlo draws
// from d using stream s. It is a test and calibration helper.
func Quantiles(d Dist, s *Stream, n int, qs ...float64) []float64 {
	if n <= 0 {
		n = 1000
	}
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = d.Sample(s)
	}
	sort.Float64s(draws)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(n-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		out[i] = draws[idx]
	}
	return out
}

// String implementations make configuration dumps readable.

func (c Const) String() string      { return fmt.Sprintf("const(%g)", float64(c)) }
func (u Uniform) String() string    { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }
func (e Exp) String() string        { return fmt.Sprintf("exp(mean=%g)", e.MeanVal) }
func (w Weibull) String() string    { return fmt.Sprintf("weibull(k=%g,λ=%g)", w.Shape, w.Scale) }
func (l LogNormal) String() string  { return fmt.Sprintf("lognormal(μ=%g,σ=%g)", l.Mu, l.Sigma) }
func (t Triangular) String() string { return fmt.Sprintf("tri(%g,%g,%g)", t.Lo, t.Mode, t.Hi) }
func (p Pareto) String() string     { return fmt.Sprintf("pareto(xm=%g,α=%g)", p.Xm, p.Alpha) }
