package sim

import (
	"fmt"
	"strings"
	"testing"
)

// toyShardModel schedules a deterministic workload on every shard of me:
// each shard runs a periodic local event that draws from its RNG and
// occasionally posts a cross-shard value to the next shard. The returned
// traces record, per shard, everything that happened in order.
func toyShardModel(me *MultiEngine, interval Time, sends bool) []*strings.Builder {
	traces := make([]*strings.Builder, me.Shards())
	for i := 0; i < me.Shards(); i++ {
		traces[i] = &strings.Builder{}
		s := me.Shard(i)
		eng := s.Engine()
		i := i
		eng.Every(interval, interval, "tick", func(at Time) {
			draw := eng.RNG("toy").IntN(1000)
			fmt.Fprintf(traces[i], "t=%v local=%d\n", at, draw)
			if sends && draw%3 == 0 {
				dst := (i + 1) % me.Shards()
				v := draw
				from := i
				s.Send(dst, me.Lookahead()+Time(draw)*Millisecond, "toy-cross", func() {
					fmt.Fprintf(traces[dst], "t=%v cross from=%d v=%d\n", me.Shard(dst).Engine().Now(), from, v)
				})
			}
		})
	}
	return traces
}

func renderTraces(traces []*strings.Builder) string {
	var b strings.Builder
	for i, t := range traces {
		fmt.Fprintf(&b, "== shard %d\n%s", i, t.String())
	}
	return b.String()
}

// TestSingleShardMatchesPlainEngine pins the degenerate case the scenario
// differential tests build on: a one-shard MultiEngine drives the identical
// event order, clock, and RNG draws as a plain Engine with the same seed.
func TestSingleShardMatchesPlainEngine(t *testing.T) {
	run := func(drive func(eng *Engine, until Time)) string {
		eng := NewEngine(42)
		var b strings.Builder
		eng.Every(7*Minute, 7*Minute, "tick", func(at Time) {
			fmt.Fprintf(&b, "t=%v draw=%d\n", at, eng.RNG("toy").IntN(1000))
			if eng.RNG("toy").Bernoulli(0.25) {
				eng.After(90*Second, "burst", func() {
					fmt.Fprintf(&b, "t=%v burst\n", eng.Now())
				})
			}
		})
		drive(eng, 12*Hour)
		fmt.Fprintf(&b, "fired=%d now=%v\n", eng.Fired(), eng.Now())
		return b.String()
	}
	plain := run(func(eng *Engine, until Time) { eng.RunUntil(until) })

	me := NewMultiEngine(42, 1, 5*Minute, 1)
	meEng := me.Shard(0).Engine()
	var b strings.Builder
	meEng.Every(7*Minute, 7*Minute, "tick", func(at Time) {
		fmt.Fprintf(&b, "t=%v draw=%d\n", at, meEng.RNG("toy").IntN(1000))
		if meEng.RNG("toy").Bernoulli(0.25) {
			meEng.After(90*Second, "burst", func() {
				fmt.Fprintf(&b, "t=%v burst\n", meEng.Now())
			})
		}
	})
	me.RunUntil(12 * Hour)
	fmt.Fprintf(&b, "fired=%d now=%v\n", meEng.Fired(), meEng.Now())

	if got := b.String(); got != plain {
		t.Fatalf("one-shard multi-engine diverged from plain engine:\nplain:\n%s\nsharded:\n%s", plain, got)
	}
	if me.Shard(0).Engine().Seed() != 42 {
		t.Fatalf("ShardSeed(root, 0) = %d, want the root seed", me.Shard(0).Engine().Seed())
	}
}

// TestWorkerCountsByteIdentical is the core determinism property: the same
// sharded world produces identical traces at every worker count, including
// cross-shard deliveries.
func TestWorkerCountsByteIdentical(t *testing.T) {
	run := func(workers int) (string, uint64, uint64) {
		me := NewMultiEngine(7, 5, 10*Minute, workers)
		traces := toyShardModel(me, 3*Minute, true)
		me.RunUntil(8 * Hour)
		return renderTraces(traces), me.Epochs(), me.Exchanged()
	}
	base, epochs, exchanged := run(1)
	if exchanged == 0 {
		t.Fatal("toy model exchanged no cross-shard events; the test is vacuous")
	}
	for _, w := range []int{2, 4, 8} {
		got, e, x := run(w)
		if got != base {
			t.Fatalf("workers=%d trace differs from workers=1", w)
		}
		if e != epochs || x != exchanged {
			t.Fatalf("workers=%d epochs/exchanged = %d/%d, want %d/%d", w, e, x, epochs, exchanged)
		}
	}
}

// TestCrossShardMergeOrder pins the (shard, seq) barrier merge: deliveries
// landing on one shard at the same instant fire in sending-shard order,
// then send order, regardless of which shard's epoch work finished first.
func TestCrossShardMergeOrder(t *testing.T) {
	me := NewMultiEngine(1, 3, Minute, 1)
	var got []string
	for _, src := range []int{2, 1} { // wire in reverse shard order
		src := src
		s := me.Shard(src)
		s.Engine().Schedule(Minute, "emit", func() {
			for k := 0; k < 2; k++ {
				k := k
				s.Send(0, Minute, "cross", func() {
					got = append(got, fmt.Sprintf("src=%d k=%d", src, k))
				})
			}
		})
	}
	me.RunUntil(Hour)
	want := []string{"src=1 k=0", "src=1 k=1", "src=2 k=0", "src=2 k=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

// TestSendBelowLookaheadPanics: delays under the lookahead would let a
// delivery land in the destination's past; they must panic loudly.
func TestSendBelowLookaheadPanics(t *testing.T) {
	me := NewMultiEngine(1, 2, Minute, 1)
	s := me.Shard(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
	}()
	s.Send(1, 30*Second, "bad", func() {})
}

// TestRunUntilAdvancesAllClocks: idle shards still end at the deadline, so
// a subsequent epoch never schedules into any shard's past.
func TestRunUntilAdvancesAllClocks(t *testing.T) {
	me := NewMultiEngine(3, 3, Minute, 1)
	me.Shard(1).Engine().Schedule(Hour, "only-event", func() {})
	me.RunUntil(2 * Hour)
	for i := 0; i < me.Shards(); i++ {
		if now := me.Shard(i).Engine().Now(); now != 2*Hour {
			t.Fatalf("shard %d clock = %v, want %v", i, now, 2*Hour)
		}
	}
	if me.Now() != 2*Hour {
		t.Fatalf("barrier clock = %v, want %v", me.Now(), 2*Hour)
	}
}

// TestBuildTimeSendDelivered: sends posted before the first epoch (build
// wiring) are exchanged before the first horizon computation.
func TestBuildTimeSendDelivered(t *testing.T) {
	me := NewMultiEngine(9, 2, Minute, 2)
	fired := false
	me.Shard(0).Send(1, Minute, "boot", func() { fired = true })
	me.RunUntil(Hour)
	if !fired {
		t.Fatal("build-time cross-shard send never delivered")
	}
}

// TestShardSeedFamilies: distinct shards get distinct seeds and therefore
// independent stream families; shard 0 keeps the root.
func TestShardSeedFamilies(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := ShardSeed(99, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ShardSeed collision between shards %d and %d", prev, i)
		}
		seen[s] = i
	}
	if ShardSeed(99, 0) != 99 {
		t.Fatalf("ShardSeed(99, 0) = %d, want 99", ShardSeed(99, 0))
	}
}

// TestBarrierHook pins the observer contract: the hook fires once per
// epoch on the coordinator's goroutine with monotonically increasing epoch
// numbers and horizons, its trace is identical at every worker count, and
// clearing it stops further callbacks.
func TestBarrierHook(t *testing.T) {
	run := func(workers int) (string, uint64) {
		me := NewMultiEngine(7, 4, 10*Minute, workers)
		toyShardModel(me, 3*Minute, true)
		var trace strings.Builder
		var lastEpoch uint64
		var lastNow Time = -1
		me.SetBarrierHook(func(epoch uint64, now Time) {
			if epoch != lastEpoch+1 {
				t.Errorf("workers=%d: epoch %d after %d, want consecutive", workers, epoch, lastEpoch)
			}
			if now <= lastNow {
				t.Errorf("workers=%d: horizon %v after %v, want increasing", workers, now, lastNow)
			}
			if now != me.Now() {
				t.Errorf("workers=%d: hook now %v != me.Now() %v", workers, now, me.Now())
			}
			lastEpoch, lastNow = epoch, now
			fmt.Fprintf(&trace, "epoch=%d now=%v\n", epoch, now)
		})
		me.RunUntil(4 * Hour)
		if lastEpoch != me.Epochs() {
			t.Errorf("workers=%d: hook fired %d times over %d epochs", workers, lastEpoch, me.Epochs())
		}
		return trace.String(), lastEpoch
	}
	base, epochs := run(1)
	if epochs == 0 {
		t.Fatal("no epochs ran; the test is vacuous")
	}
	for _, w := range []int{2, 4} {
		if got, _ := run(w); got != base {
			t.Fatalf("workers=%d barrier trace differs from workers=1", w)
		}
	}

	// Clearing the hook stops callbacks without disturbing the run.
	me := NewMultiEngine(7, 2, 10*Minute, 1)
	toyShardModel(me, 3*Minute, false)
	fired := 0
	me.SetBarrierHook(func(uint64, Time) { fired++ })
	me.RunUntil(1 * Hour)
	if fired == 0 {
		t.Fatal("hook never fired")
	}
	me.SetBarrierHook(nil)
	before := fired
	me.RunUntil(2 * Hour)
	if fired != before {
		t.Fatalf("hook fired %d more times after being cleared", fired-before)
	}
}
