package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// meanOf estimates the sample mean of n draws.
func meanOf(d Dist, s *Stream, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(s)
	}
	return sum / float64(n)
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g ± %g", name, got, want, tol)
	}
}

func TestDistMeansMatchSamples(t *testing.T) {
	s := newTestStream(11)
	const n = 200000
	cases := []struct {
		name string
		d    Dist
		tol  float64
	}{
		{"const", Const(4.5), 1e-12},
		{"uniform", Uniform{2, 8}, 0.05},
		{"exp", Exp{MeanVal: 3}, 0.05},
		{"weibull-wearout", Weibull{Shape: 2, Scale: 10}, 0.1},
		{"weibull-infant", Weibull{Shape: 0.7, Scale: 5}, 0.2},
		{"lognormal", LogNormal{Mu: 1, Sigma: 0.5}, 0.1},
		{"triangular", Triangular{0, 3, 9}, 0.05},
		{"pareto", Pareto{Xm: 1, Alpha: 3}, 0.05},
		{"shifted", Shifted{Base: Exp{MeanVal: 2}, Offset: 5}, 0.05},
	}
	for _, c := range cases {
		within(t, c.name, meanOf(c.d, s, n), c.d.Mean(), c.tol)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if m := (Pareto{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Fatalf("Pareto alpha<=1 mean = %g, want +Inf", m)
	}
}

func TestEmpirical(t *testing.T) {
	s := newTestStream(3)
	e := Empirical{Values: []float64{1, 2, 3}}
	within(t, "uniform empirical mean", e.Mean(), 2, 1e-12)
	within(t, "uniform empirical sample mean", meanOf(e, s, 100000), 2, 0.02)

	w := Empirical{Values: []float64{0, 10}, Weights: []float64{9, 1}}
	within(t, "weighted empirical mean", w.Mean(), 1, 1e-12)
	within(t, "weighted empirical sample mean", meanOf(w, s, 100000), 1, 0.1)

	var empty Empirical
	if empty.Sample(s) != 0 || empty.Mean() != 0 {
		t.Fatal("empty empirical should yield 0")
	}
	zero := Empirical{Values: []float64{5}, Weights: []float64{0}}
	if zero.Mean() != 0 {
		t.Fatal("all-zero weights mean should be 0")
	}
}

func TestClamped(t *testing.T) {
	s := newTestStream(4)
	c := Clamped{Base: Exp{MeanVal: 100}, Lo: 1, Hi: 5}
	for i := 0; i < 1000; i++ {
		v := c.Sample(s)
		if v < 1 || v > 5 {
			t.Fatalf("clamped sample %g outside [1,5]", v)
		}
	}
	if c.Mean() != 5 {
		t.Fatalf("clamped mean = %g, want 5 (mean above Hi clamps)", c.Mean())
	}
	c2 := Clamped{Base: Const(0.1), Lo: 1, Hi: 5}
	if c2.Mean() != 1 {
		t.Fatalf("clamped mean = %g, want 1 (mean below Lo clamps)", c2.Mean())
	}
}

func TestShiftedMin(t *testing.T) {
	s := newTestStream(5)
	sh := Shifted{Base: Const(-10), Offset: 2, Min: 0.5}
	if v := sh.Sample(s); v != 0.5 {
		t.Fatalf("Shifted below Min: got %g, want 0.5", v)
	}
}

func TestSampleDuration(t *testing.T) {
	s := newTestStream(6)
	if d := SampleDuration(Const(90), s); d != 90*Second {
		t.Fatalf("SampleDuration(90s) = %v", d)
	}
	if d := SampleDuration(Const(-1), s); d != 0 {
		t.Fatalf("negative duration not clamped: %v", d)
	}
	if d := MeanDuration(Exp{MeanVal: 60}); d != Minute {
		t.Fatalf("MeanDuration = %v, want 1m", d)
	}
	if d := MeanDuration(Const(-2)); d != 0 {
		t.Fatalf("negative MeanDuration not clamped: %v", d)
	}
}

// Property: Weibull samples are always non-negative and finite for valid
// parameters.
func TestWeibullPositiveProperty(t *testing.T) {
	s := newTestStream(7)
	f := func(shape10, scale10 uint8) bool {
		shape := 0.3 + float64(shape10%40)/10 // 0.3 .. 4.2
		scale := 0.1 + float64(scale10)/10
		v := s.Weibull(shape, scale)
		return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Triangular samples stay in [lo, hi] and the mode ordering holds.
func TestTriangularBoundsProperty(t *testing.T) {
	s := newTestStream(8)
	f := func(a, b, c int16) bool {
		// Realistic task-duration magnitudes; extreme float64 inputs
		// overflow intermediate products and are not meaningful here.
		lo, mode, hi := float64(a), float64(b), float64(c)
		// sort into lo <= mode <= hi
		if lo > mode {
			lo, mode = mode, lo
		}
		if mode > hi {
			mode, hi = hi, mode
		}
		if lo > mode {
			lo, mode = mode, lo
		}
		v := s.Triangular(lo, mode, hi)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulli(t *testing.T) {
	s := newTestStream(9)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	if s.Bernoulli(-3) || !s.Bernoulli(7) {
		t.Fatal("out-of-range p not clamped")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.25) {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) frequency = %g", got)
	}
}

func TestPickWeighted(t *testing.T) {
	s := newTestStream(10)
	counts := [3]int{}
	for i := 0; i < 90000; i++ {
		counts[s.PickWeighted([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-2) > 0.1 {
		t.Fatalf("weight ratio = %g, want ~2", ratio)
	}
	if s.PickWeighted(nil) != 0 {
		t.Fatal("empty weights should return 0")
	}
	if s.PickWeighted([]float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
	// Negative weights behave as zero.
	for i := 0; i < 1000; i++ {
		if s.PickWeighted([]float64{-5, 1}) != 1 {
			t.Fatal("negative weight was picked")
		}
	}
}

func TestQuantiles(t *testing.T) {
	s := newTestStream(12)
	qs := Quantiles(Uniform{0, 1}, s, 50000, 0.0, 0.5, 1.0)
	if qs[0] > 0.01 || math.Abs(qs[1]-0.5) > 0.02 || qs[2] < 0.99 {
		t.Fatalf("uniform quantiles off: %v", qs)
	}
	qs = Quantiles(Const(3), s, 0, 0.5) // n<=0 uses default
	if qs[0] != 3 {
		t.Fatalf("const quantile = %v", qs[0])
	}
}

func TestDistStrings(t *testing.T) {
	for _, c := range []struct {
		d    interface{ String() string }
		want string
	}{
		{Const(2), "const(2)"},
		{Uniform{1, 2}, "uniform(1,2)"},
		{Exp{MeanVal: 3}, "exp(mean=3)"},
		{Triangular{1, 2, 3}, "tri(1,2,3)"},
	} {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
