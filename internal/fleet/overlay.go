package fleet

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Overlay is the inter-region backbone the hub shard owns: one core switch
// per region joined by a ring-plus-chords trunk mesh, with its own fault
// injector stream family, its own incremental routing cache, a backbone-NOC
// repair loop, and an availability integrator. Trunk health transitions are
// shipped to the adjacent regions as cross-shard notices, so regions can
// react to WAN weather without ever touching hub state.
type Overlay struct {
	Net    *topology.Network
	Inj    *faults.Injector
	Router *routing.Router

	// Faults and Repairs count trunk fault onsets and completed NOC
	// repairs over the run.
	Faults  int
	Repairs int

	f   *Fleet
	hub *sim.Shard

	trunks        map[topology.LinkID][2]int // trunk -> adjacent regions
	repairPending map[topology.LinkID]bool

	avail metrics.StepIntegrator
	ws    routing.Workspace
	tm    routing.TrafficMatrix
}

// buildOverlay constructs the backbone on the hub shard's engine.
func buildOverlay(f *Fleet, hub *sim.Shard) (*Overlay, error) {
	//lint:allow crossshard build-time wiring: the overlay is constructed on the hub shard before the run
	eng := hub.Engine()
	R := f.cfg.Regions
	net := topology.New("overlay")
	ovl := &Overlay{
		Net: net, f: f, hub: hub,
		trunks:        make(map[topology.LinkID][2]int),
		repairPending: make(map[topology.LinkID]bool),
	}

	// One core switch per region, plus a gateway host that terminates the
	// region's share of inter-region traffic (UniformMatrix sources and
	// sinks at hosts). 8 ports cover ring (2) + chords (2) + gateway (1).
	cores := make([]*topology.Device, R)
	for i := 0; i < R; i++ {
		cores[i] = net.AddDevice(fmt.Sprintf("ovl-core-%03d", i), topology.CoreSwitch,
			topology.Location{Row: i}, 8)
		gw := net.AddDevice(fmt.Sprintf("ovl-gw-%03d", i), topology.Server,
			topology.Location{Row: i, Rack: 1}, 1)
		// Gateway drops are not WAN weather; DAC keeps their fault surface
		// minimal relative to the long-haul trunks.
		net.Connect(net.FreePort(cores[i]), net.FreePort(gw), topology.DAC, f.cfg.TrunkGbps/4)
	}
	trunk := func(i, j int) {
		l := net.Connect(net.FreePort(cores[i]), net.FreePort(cores[j]),
			topology.FiberLC, f.cfg.TrunkGbps)
		ovl.trunks[l.ID] = [2]int{i, j}
	}
	// Ring backbone; R==2 degenerates to a single trunk.
	for i := 0; i < R && R >= 2; i++ {
		j := (i + 1) % R
		if j <= i {
			continue
		}
		trunk(i, j)
	}
	if R > 2 {
		trunk(R-1, 0)
	}
	// Chord trunks shortcut the ring once the fleet is large enough for
	// ring diameter to matter.
	if step := R / 3; step >= 2 {
		for i := 0; i < R; i++ {
			trunk(i, (i+step)%R)
		}
	}

	fcfg := faults.DefaultConfig()
	for c := range fcfg.AnnualRate {
		fcfg.AnnualRate[c] *= f.cfg.TrunkFaultScale
	}
	ovl.Inj = faults.NewInjector(eng, net, fcfg)
	ovl.Router = routing.NewRouter(net, func(id topology.LinkID) bool {
		return ovl.Inj.Observable(id) != faults.Down
	})
	ovl.Inj.Subscribe(overlayListener{ovl})

	// Sample cross-region reachability each summary period: a uniform
	// gateway-to-gateway matrix at half the per-gateway access capacity.
	if R >= 2 {
		ovl.tm = routing.UniformMatrix(net, float64(R)*f.cfg.TrunkGbps/8)
		eng.Every(f.cfg.SummaryEvery, f.cfg.SummaryEvery, "overlay-sample", func(at sim.Time) {
			ovl.avail.Observe(at, ovl.Router.EvaluateInto(&ovl.ws, ovl.tm).Availability())
		})
	}
	return ovl, nil
}

// Availability returns the time-averaged cross-region traffic availability
// up to t (1.0 for a single-region fleet, which has no overlay traffic).
func (o *Overlay) Availability(t sim.Time) float64 {
	if o.f.cfg.Regions < 2 {
		return 1
	}
	return o.avail.Average(t)
}

// Trunks returns the number of inter-region trunks.
func (o *Overlay) Trunks() int { return len(o.trunks) }

// overlayListener reacts to overlay ground truth: it keeps the routing
// cache fresh, books a NOC repair for every fault, and posts trunk notices
// to the adjacent regions at the healthy boundary.
type overlayListener struct{ o *Overlay }

func (ol overlayListener) LinkStateChanged(l *topology.Link, from, to faults.Health, at sim.Time) {
	o := ol.o
	o.Router.InvalidateLink(l.ID)

	regions, isTrunk := o.trunks[l.ID]
	if isTrunk && (from == faults.Healthy) != (to == faults.Healthy) {
		up := to == faults.Healthy
		if !up {
			o.Faults++
		}
		for _, r := range regions {
			r := r
			o.f.stats.TrunkNotices++
			o.hub.Send(r+1, o.f.cfg.Lookahead, "trunk-notice", func() {
				o.f.regions[r].TrunkStateChanged(up, at)
			})
		}
	}

	// Backbone NOC: every overlay fault gets a repair after a log-normal
	// delay. ClearFault resets the cleared cause's onset clock, so the
	// overlay keeps weathering faults for the whole run.
	if to != faults.Healthy && !o.repairPending[l.ID] {
		o.repairPending[l.ID] = true
		mean := o.f.cfg.TrunkRepairMeanH * 3600
		const sigma = 0.6
		//lint:allow crossshard same-shard access: overlay listeners fire inside hub-shard events, so this is the shard's own engine
		hubEng := o.hub.Engine()
		delay := hubEng.RNG("fleet/noc").LogNormal(math.Log(mean)-sigma*sigma/2, sigma)
		hubEng.After(sim.Time(delay*float64(sim.Second)), "trunk-repair", func() {
			o.repairPending[l.ID] = false
			if o.Inj.State(l.ID).Health != faults.Healthy || o.Inj.State(l.ID).Cause != faults.None {
				o.Inj.ClearFault(l)
				if _, wasTrunk := o.trunks[l.ID]; wasTrunk {
					o.Repairs++
				}
			}
		})
	}
}

func (ol overlayListener) LinkFlapped(*topology.Link, sim.Time, float64, sim.Time) {}
