package fleet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

// toyRegion is a lightweight Region for coordinator tests: link health
// wanders with the shard's own RNG, robots go busy and idle, and every
// Region callback is appended to a deterministic per-region trace.
type toyRegion struct {
	shard *sim.Shard
	id    int

	links, down   int
	open, resolve int
	idle, total   int

	trace strings.Builder
}

func newToyRegion(shard *sim.Shard, id int, robots int) *toyRegion {
	r := &toyRegion{shard: shard, id: id, links: 120, idle: robots, total: robots}
	eng := shard.Engine()
	eng.Every(37*sim.Minute, 37*sim.Minute, "toy-churn", func(at sim.Time) {
		rng := eng.RNG("toy")
		// Fault churn: regions with higher ids degrade faster, so the fleet
		// has clear donors and clear borrowers.
		if rng.Bernoulli(0.10 + 0.15*float64(id)) {
			if r.down < r.links/3 {
				r.down++
				r.open++
			}
		} else if r.down > 0 && rng.Bernoulli(0.5) {
			r.down--
			if r.open > 0 {
				r.open--
				r.resolve++
			}
		}
		// Robot churn: borrowers run hot.
		if r.idle > 0 && rng.Bernoulli(0.3+0.2*float64(id)) {
			r.idle--
		} else if r.idle < r.total && rng.Bernoulli(0.4) {
			r.idle++
		}
	})
	return r
}

func (r *toyRegion) Summary(at sim.Time) Summary {
	return Summary{
		Links: r.links, LinksDown: r.down,
		OpenTickets: r.open, Resolved: r.resolve,
		RobotsIdle: r.idle, RobotsTotal: r.total,
	}
}

func (r *toyRegion) LendUnit() bool {
	if r.idle == 0 {
		fmt.Fprintf(&r.trace, "t=%v lend-declined\n", r.shard.Engine().Now())
		return false
	}
	r.idle--
	r.total--
	fmt.Fprintf(&r.trace, "t=%v lend\n", r.shard.Engine().Now())
	return true
}

func (r *toyRegion) ReceiveUnit(name string) {
	r.idle++
	r.total++
	fmt.Fprintf(&r.trace, "t=%v receive %s\n", r.shard.Engine().Now(), name)
}

func (r *toyRegion) TrunkStateChanged(up bool, at sim.Time) {
	fmt.Fprintf(&r.trace, "t=%v trunk up=%v (at %v)\n", r.shard.Engine().Now(), up, at)
}

func buildToyFleet(t *testing.T, workers int) (*Fleet, []*toyRegion) {
	t.Helper()
	regions := make([]*toyRegion, 0, 4)
	f, err := Build(Config{
		Seed: 1701, Regions: 4, Workers: workers,
		Lookahead:    10 * sim.Minute,
		SummaryEvery: 2 * sim.Hour,
		// Starved regions ask quickly so a short run exercises transfers.
		TransferBacklog: 3, TransferCooldown: 6 * sim.Hour,
		TransferTransit: sim.Hour,
		DegradedFrac:    0.05,
		TrunkFaultScale: 300, TrunkRepairMeanH: 2,
		BuildRegion: func(shard *sim.Shard, region int) (Region, error) {
			// Region 0 is robot-rich, region 3 robot-poor.
			r := newToyRegion(shard, region, []int{6, 4, 2, 1}[region])
			regions = append(regions, r)
			return r, nil
		},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f, regions
}

// runToyFleet runs the toy fleet and returns a full deterministic
// transcript: the report plus every region's trace and the hub's bus tap
// log — everything that could expose a worker-count dependence.
func runToyFleet(t *testing.T, workers int) string {
	t.Helper()
	f, regions := buildToyFleet(t, workers)
	var tap strings.Builder
	f.Bus.Tap(func(ev bus.Event) {
		fmt.Fprintf(&tap, "t=%v #%d %s %+v\n", ev.At, ev.Seq, ev.Topic, ev.Payload)
	})
	f.Run(30 * 24 * sim.Hour)
	rep := f.Report()
	var b strings.Builder
	b.WriteString(rep.Render())
	for i, r := range regions {
		fmt.Fprintf(&b, "== region %d trace\n%s", i, r.trace.String())
	}
	fmt.Fprintf(&b, "== hub tap\n%s", tap.String())
	return b.String()
}

// TestFleetWorkerCountsByteIdentical is the fleet-level determinism pin:
// the full transcript (report, per-region traces, hub bus tap) is
// byte-identical at every worker count. Run under -race this also exercises
// the epoch barrier for data races between shard pipelines.
func TestFleetWorkerCountsByteIdentical(t *testing.T) {
	base := runToyFleet(t, 1)
	if !strings.Contains(base, "lend") {
		t.Fatalf("toy fleet never exercised a transfer; transcript:\n%s", base)
	}
	if !strings.Contains(base, "trunk up=") {
		t.Fatal("toy fleet never delivered a trunk notice")
	}
	for _, w := range []int{2, 4, 8} {
		if got := runToyFleet(t, w); got != base {
			t.Fatalf("workers=%d transcript differs from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s", w, base, w, got)
		}
	}
}

// TestFleetTransfersRebalance checks the brokering policy end to end: the
// starved region receives a unit from the idle-rich donor, with matching
// stats and a granted transfer note on the bus.
func TestFleetTransfersRebalance(t *testing.T) {
	f, regions := buildToyFleet(t, 1)
	var notes []TransferNote
	f.Bus.Subscribe(TopicTransfer, func(ev bus.Event) {
		notes = append(notes, ev.Payload.(TransferNote))
	})
	f.Run(60 * 24 * sim.Hour)

	st := f.Stats()
	if st.TransfersRequested == 0 {
		t.Fatal("no transfers requested in 60 days of a starved region")
	}
	if st.TransfersGranted+st.TransfersDeclined != st.TransfersRequested {
		t.Fatalf("transfer accounting: %d granted + %d declined != %d requested",
			st.TransfersGranted, st.TransfersDeclined, st.TransfersRequested)
	}
	if len(notes) != st.TransfersRequested {
		t.Fatalf("bus saw %d transfer notes, stats say %d", len(notes), st.TransfersRequested)
	}
	granted := 0
	for _, n := range notes {
		if n.Granted {
			granted++
			if !strings.Contains(regions[n.To].trace.String(), "receive "+n.Unit) {
				t.Fatalf("granted unit %s never arrived at region %d", n.Unit, n.To)
			}
		}
	}
	if granted != st.TransfersGranted {
		t.Fatalf("bus saw %d grants, stats say %d", granted, st.TransfersGranted)
	}
}

// TestFleetTicketsHysteresis: fleet tickets open past the threshold, close
// below half of it, and never double-open.
func TestFleetTicketsHysteresis(t *testing.T) {
	f, _ := buildToyFleet(t, 1)
	f.Run(60 * 24 * sim.Hour)
	st := f.Stats()
	if st.TicketsOpened == 0 {
		t.Fatal("no fleet tickets opened")
	}
	open := map[int]bool{}
	for _, tk := range f.Tickets() {
		if tk.ClosedAt == 0 {
			if open[tk.Region] {
				t.Fatalf("region %d has two open fleet tickets", tk.Region)
			}
			open[tk.Region] = true
		} else if tk.ClosedAt < tk.OpenedAt {
			t.Fatalf("ticket closed before it opened: %+v", tk)
		}
	}
	if st.TicketsOpened-st.TicketsClosed < 0 {
		t.Fatalf("closed more tickets than opened: %+v", st)
	}
}

// TestFleetOverlayWeather: the accelerated overlay sees trunk faults, the
// NOC repairs them, and availability stays a sane fraction.
func TestFleetOverlayWeather(t *testing.T) {
	f, _ := buildToyFleet(t, 1)
	f.Run(60 * 24 * sim.Hour)
	rep := f.Report()
	if rep.TrunkFaults == 0 {
		t.Fatal("no trunk faults at 300x acceleration")
	}
	if rep.TrunkRepairs == 0 {
		t.Fatal("NOC repaired nothing")
	}
	if rep.OverlayAvail <= 0 || rep.OverlayAvail > 1 {
		t.Fatalf("overlay availability %v out of range", rep.OverlayAvail)
	}
	if f.Overlay.Trunks() == 0 {
		t.Fatal("overlay has no trunks")
	}
	if f.Stats().TrunkNotices == 0 {
		t.Fatal("no trunk notices reached the regions")
	}
}

// TestFleetConfigValidation pins the Build error paths.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := Build(Config{Regions: 0, BuildRegion: func(*sim.Shard, int) (Region, error) { return nil, nil }}); err == nil {
		t.Fatal("Build accepted zero regions")
	}
	if _, err := Build(Config{Regions: 2}); err == nil {
		t.Fatal("Build accepted a nil BuildRegion")
	}
	if _, err := Build(Config{Regions: 1, BuildRegion: func(*sim.Shard, int) (Region, error) {
		return nil, fmt.Errorf("boom")
	}}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("region build error not propagated: %v", err)
	}
}
