// Package fleet coordinates a multi-datacenter, region-sharded simulation:
// N regions, each a full self-maintenance world on its own sim.Engine (one
// shard of a sim.MultiEngine), plus a fleet hub shard that owns the
// inter-region overlay network and the fleet-level aggregation stage. It is
// the "datacenters of robots, fleets of datacenters" scale-out of the
// paper's pitch: regions drain their event heaps in parallel between
// deterministic epoch barriers, and everything that crosses a region
// boundary — health summaries, robot transfers, trunk notifications — is a
// cross-shard event exchanged at the barrier in (shard, seq) order, so a
// fleet run is byte-identical at any worker count.
//
// The package is deliberately model-agnostic about what a region is: the
// Region interface is implemented by internal/scenario, which wires a
// complete World (topology, faults, telemetry, pipeline, robots, humans)
// per region. That keeps the dependency arrow pointing one way — scenario
// imports fleet, never the reverse.
package fleet

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/bus"
	"repro/internal/sim"
)

// Summary is one region's periodic health snapshot, shipped to the hub as
// a cross-shard event and aggregated into the fleet ledger.
type Summary struct {
	Region      int
	At          sim.Time
	Links       int
	LinksDown   int
	OpenTickets int // open reactive+proactive tickets
	Resolved    int // tickets resolved since the epoch start of the run
	RobotsIdle  int
	RobotsTotal int
}

// DownFrac is the fraction of the region's links currently unhealthy.
func (s Summary) DownFrac() float64 {
	if s.Links == 0 {
		return 0
	}
	return float64(s.LinksDown) / float64(s.Links)
}

// Region is the per-shard model the fleet coordinates. Every method is
// invoked on the region's own shard (build, epoch event, or post-run
// coordinator context) — implementations never need locks.
type Region interface {
	// Summary returns a deterministic snapshot of the region's health.
	Summary(at sim.Time) Summary
	// LendUnit withdraws one idle robot for transfer to another region,
	// reporting whether one was available.
	LendUnit() bool
	// ReceiveUnit deploys a transferred robot under the given name.
	ReceiveUnit(name string)
	// TrunkStateChanged notifies the region that an adjacent inter-region
	// trunk crossed the healthy/unhealthy boundary.
	TrunkStateChanged(up bool, at sim.Time)
}

// Ticket is a fleet-level ticket: a region whose fabric degraded past the
// configured threshold, opened and closed by the hub's aggregation stage.
type Ticket struct {
	Region   int
	OpenedAt sim.Time
	ClosedAt sim.Time // zero while open
}

// Stats counts fleet-level coordination activity.
type Stats struct {
	Summaries          int
	TransfersRequested int
	TransfersGranted   int
	TransfersDeclined  int
	TicketsOpened      int
	TicketsClosed      int
	TrunkNotices       int // region notifications sent for trunk transitions
}

// Config sizes a fleet build.
type Config struct {
	Seed    uint64
	Regions int
	// Lookahead is the epoch window width: the minimum delay of every
	// cross-shard effect. Default 15 simulated minutes.
	Lookahead sim.Time
	// Workers bounds how many shards drain concurrently per epoch;
	// 0 = all host cores, 1 = serial (identical output either way).
	Workers int
	// SummaryEvery is the region health-summary period. Default 6h.
	SummaryEvery sim.Time
	// TransferTransit is how long a robot takes to ship between regions.
	// Default 12h.
	TransferTransit sim.Time
	// TransferBacklog is the open-ticket count at which a region with no
	// idle robots requests a transfer. Default 4.
	TransferBacklog int
	// TransferCooldown throttles repeat requests per region. Default 24h.
	TransferCooldown sim.Time
	// DegradedFrac is the down-link fraction that opens a fleet ticket for
	// a region; it closes below half the threshold. Default 0.02.
	DegradedFrac float64
	// TrunkGbps is the capacity of inter-region trunks. Default 400.
	TrunkGbps float64
	// TrunkFaultScale multiplies the trunk fault rates (the same
	// accelerated-aging knob the halls use). Default 1.
	TrunkFaultScale float64
	// TrunkRepairMeanH is the mean hours the backbone NOC needs to repair a
	// trunk. Default 6.
	TrunkRepairMeanH float64
	// BuildRegion constructs region r's model on its shard. Required.
	BuildRegion func(shard *sim.Shard, region int) (Region, error)
}

func (c *Config) fillDefaults() {
	if c.Lookahead <= 0 {
		c.Lookahead = 15 * sim.Minute
	}
	if c.SummaryEvery <= 0 {
		c.SummaryEvery = 6 * sim.Hour
	}
	if c.TransferTransit <= 0 {
		c.TransferTransit = 12 * sim.Hour
	}
	if c.TransferTransit < c.Lookahead {
		c.TransferTransit = c.Lookahead
	}
	if c.TransferBacklog <= 0 {
		c.TransferBacklog = 4
	}
	if c.TransferCooldown <= 0 {
		c.TransferCooldown = 24 * sim.Hour
	}
	if c.DegradedFrac <= 0 {
		c.DegradedFrac = 0.02
	}
	if c.TrunkGbps <= 0 {
		c.TrunkGbps = 400
	}
	if c.TrunkFaultScale <= 0 {
		c.TrunkFaultScale = 1
	}
	if c.TrunkRepairMeanH <= 0 {
		c.TrunkRepairMeanH = 6
	}
}

// Fleet is a built multi-region world: shard 0 is the hub (overlay network,
// fleet bus, aggregation, transfer brokering); shard r+1 is region r.
type Fleet struct {
	cfg     Config
	ME      *sim.MultiEngine
	Bus     *bus.Bus // fleet-level bus, on the hub engine
	Overlay *Overlay
	regions []Region

	// Hub-side aggregation state, mutated only by hub-shard events.
	latest      []Summary
	have        []bool
	cooldown    []sim.Time // per recipient: no new request before this
	donorBusy   []bool     // a lend request is in flight to this region
	openTicket  []int      // per region: index+1 into tickets while open
	tickets     []Ticket
	stats       Stats
	summarySubs int
}

// Bus topics published by the hub's aggregation stage.
const (
	TopicSummary  bus.Topic = "fleet.summary"
	TopicTicket   bus.Topic = "fleet.ticket"
	TopicTransfer bus.Topic = "fleet.transfer"
	TopicTrunk    bus.Topic = "fleet.trunk"
)

// TransferNote is the payload of fleet.transfer events.
type TransferNote struct {
	From, To int
	Granted  bool
	Unit     string
}

// Build wires a fleet: the multi-engine, the hub's overlay + bus, every
// region via cfg.BuildRegion, and the periodic summary flow.
func Build(cfg Config) (*Fleet, error) {
	cfg.fillDefaults()
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("fleet: %d regions", cfg.Regions)
	}
	if cfg.BuildRegion == nil {
		return nil, fmt.Errorf("fleet: BuildRegion is required")
	}
	me := sim.NewMultiEngine(cfg.Seed, cfg.Regions+1, cfg.Lookahead, cfg.Workers)
	f := &Fleet{
		cfg: cfg, ME: me,
		regions:    make([]Region, cfg.Regions),
		latest:     make([]Summary, cfg.Regions),
		have:       make([]bool, cfg.Regions),
		cooldown:   make([]sim.Time, cfg.Regions),
		donorBusy:  make([]bool, cfg.Regions),
		openTicket: make([]int, cfg.Regions),
	}
	//lint:allow crossshard build-time wiring: the hub's bus and overlay live on shard 0 before the clock starts
	hub := me.Shard(0)
	f.Bus = bus.New(hub.Engine()) //lint:allow crossshard build-time wiring: the fleet bus is created on the hub shard before the run
	var err error
	f.Overlay, err = buildOverlay(f, hub)
	if err != nil {
		return nil, err
	}
	for r := 0; r < cfg.Regions; r++ {
		//lint:allow crossshard build-time wiring: each region model is constructed on its own shard before the run
		shard := me.Shard(r + 1)
		reg, err := cfg.BuildRegion(shard, r)
		if err != nil {
			return nil, fmt.Errorf("fleet: region %d: %w", r, err)
		}
		f.regions[r] = reg
		f.startSummaries(shard, r, reg)
	}
	return f, nil
}

// startSummaries schedules region r's periodic health snapshot and its
// cross-shard shipment to the hub.
func (f *Fleet) startSummaries(shard *sim.Shard, r int, reg Region) {
	//lint:allow crossshard build-time wiring: the summary ticker is installed on the region's own shard before the run
	eng := shard.Engine()
	eng.Every(f.cfg.SummaryEvery, f.cfg.SummaryEvery, "region-summary", func(at sim.Time) {
		s := reg.Summary(at)
		s.Region = r
		s.At = at
		shard.Send(0, f.cfg.Lookahead, "summary-to-hub", func() {
			f.onSummary(s)
		})
	})
}

// onSummary is the hub's aggregation stage: it runs on the hub shard for
// every region summary, updates the fleet ledger, manages fleet tickets,
// and brokers robot transfers.
func (f *Fleet) onSummary(s Summary) {
	now := f.hubNow()
	f.stats.Summaries++
	f.latest[s.Region] = s
	f.have[s.Region] = true
	f.Bus.Publish(TopicSummary, s)

	// Fleet tickets: a region past the degraded threshold gets one open
	// ticket until it recovers below half the threshold (hysteresis).
	frac := s.DownFrac()
	switch open := f.openTicket[s.Region]; {
	case open == 0 && frac >= f.cfg.DegradedFrac:
		f.tickets = append(f.tickets, Ticket{Region: s.Region, OpenedAt: now})
		f.openTicket[s.Region] = len(f.tickets)
		f.stats.TicketsOpened++
		f.Bus.Publish(TopicTicket, f.tickets[len(f.tickets)-1])
	case open != 0 && frac < f.cfg.DegradedFrac/2:
		f.tickets[open-1].ClosedAt = now
		f.openTicket[s.Region] = 0
		f.stats.TicketsClosed++
		f.Bus.Publish(TopicTicket, f.tickets[open-1])
	}

	// Robot rebalancing: a starved region (backlog, no idle robots) borrows
	// from the most idle-rich donor; the donor confirms on its own shard
	// and ships the unit with transit latency.
	if s.RobotsIdle > 0 || s.OpenTickets < f.cfg.TransferBacklog || now < f.cooldown[s.Region] {
		return
	}
	donor := -1
	best := 1 // require at least 2 idle units so donors keep local cover
	for d := 0; d < len(f.regions); d++ {
		if d == s.Region || !f.have[d] || f.donorBusy[d] {
			continue
		}
		if idle := f.latest[d].RobotsIdle; idle > best {
			best = idle
			donor = d
		}
	}
	if donor < 0 {
		return
	}
	f.stats.TransfersRequested++
	f.cooldown[s.Region] = now + f.cfg.TransferCooldown
	f.donorBusy[donor] = true
	to, from := s.Region, donor
	unit := fmt.Sprintf("xfer-%d-to-%d-n%d", from, to, f.stats.TransfersRequested)
	f.hubShard().Send(from+1, f.cfg.Lookahead, "lend-request", func() {
		f.onLendRequest(from, to, unit)
	})
}

// onLendRequest runs on the donor's shard: withdraw an idle unit if one is
// still available, ship it to the recipient, and ack the hub either way.
func (f *Fleet) onLendRequest(from, to int, unit string) {
	donorShard := f.shardOf(from)
	granted := f.regions[from].LendUnit()
	if granted {
		donorShard.Send(to+1, f.cfg.TransferTransit, "unit-arrives", func() {
			f.regions[to].ReceiveUnit(unit)
		})
	}
	donorShard.Send(0, f.cfg.Lookahead, "lend-ack", func() {
		f.donorBusy[from] = false
		if granted {
			f.stats.TransfersGranted++
		} else {
			f.stats.TransfersDeclined++
		}
		f.Bus.Publish(TopicTransfer, TransferNote{From: from, To: to, Granted: granted, Unit: unit})
	})
}

// hubShard returns shard 0. Hub-side handlers run on it by construction.
func (f *Fleet) hubShard() *sim.Shard {
	//lint:allow crossshard hub-side handlers run on shard 0 by construction; this is self-access, not foreign reach
	return f.ME.Shard(0)
}

// shardOf returns region r's shard, for handlers already running on it.
func (f *Fleet) shardOf(r int) *sim.Shard {
	//lint:allow crossshard callers run on region r's own shard (delivered there by the barrier exchange)
	return f.ME.Shard(r + 1)
}

func (f *Fleet) hubNow() sim.Time {
	//lint:allow crossshard hub-side handlers read their own shard's clock
	return f.ME.Shard(0).Engine().Now()
}

// Run advances the fleet to the given instant.
func (f *Fleet) Run(until sim.Time) { f.ME.RunUntil(until) }

// Stats returns the coordination counters.
func (f *Fleet) Stats() Stats { return f.stats }

// Tickets returns the fleet-level tickets in open order.
func (f *Fleet) Tickets() []Ticket { return f.tickets }

// Report is the deterministic end-of-run summary of a fleet simulation;
// its Render is byte-identical at any worker count for a fixed seed.
type Report struct {
	Regions   int
	Epochs    uint64
	Exchanged uint64
	Fired     uint64

	Stats        Stats
	TrunkFaults  int
	TrunkRepairs int
	OverlayAvail float64

	PerRegion []Summary // final snapshot per region
}

// Report gathers the end-of-run summary. Call it after Run returns: it
// reads every shard from the coordinator's goroutine, which is safe only
// between runs.
func (f *Fleet) Report() *Report {
	rep := &Report{
		Regions:      f.cfg.Regions,
		Epochs:       f.ME.Epochs(),
		Exchanged:    f.ME.Exchanged(),
		Fired:        f.ME.Fired(),
		Stats:        f.stats,
		TrunkFaults:  f.Overlay.Faults,
		TrunkRepairs: f.Overlay.Repairs,
		OverlayAvail: f.Overlay.Availability(f.hubNow()),
	}
	for r, reg := range f.regions {
		s := reg.Summary(f.ME.Now())
		s.Region = r
		s.At = f.ME.Now()
		rep.PerRegion = append(rep.PerRegion, s)
	}
	return rep
}

// Render formats the report; differential tests compare it byte-for-byte
// across worker counts.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: regions=%d epochs=%d cross=%d fired=%d\n",
		r.Regions, r.Epochs, r.Exchanged, r.Fired)
	fmt.Fprintf(&b, "hub: summaries=%d tickets=%d/%d transfers=%d/%d/%d trunk-faults=%d trunk-repairs=%d overlay-avail=%.6f\n",
		r.Stats.Summaries, r.Stats.TicketsOpened, r.Stats.TicketsClosed,
		r.Stats.TransfersRequested, r.Stats.TransfersGranted, r.Stats.TransfersDeclined,
		r.TrunkFaults, r.TrunkRepairs, r.OverlayAvail)
	for _, s := range r.PerRegion {
		fmt.Fprintf(&b, "region %d: links=%d down=%d open=%d resolved=%d robots=%d/%d\n",
			s.Region, s.Links, s.LinksDown, s.OpenTickets, s.Resolved, s.RobotsIdle, s.RobotsTotal)
	}
	return b.String()
}

// Fingerprint hashes the rendered report — the compact byte-identity token
// the F8 experiment prints per worker count.
func (r *Report) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.Render()))
	return h.Sum64()
}
