package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	builders := map[string]func() (*Network, error){
		"fattree": func() (*Network, error) { return NewFatTree(DefaultFatTree(4)) },
		"leafspine": func() (*Network, error) {
			return NewLeafSpine(LeafSpineConfig{
				Leaves: 4, Spines: 2, HostsPerLeaf: 2, Uplinks: 2,
				FabricGbps: 400, HostGbps: 100,
			})
		},
		"jellyfish": func() (*Network, error) {
			cfg := DefaultJellyfish()
			cfg.Switches = 12
			cfg.FabricDegree = 4
			cfg.HostsPerSwitch = 2
			return NewJellyfish(cfg)
		},
	}
	for name, build := range builders {
		orig, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeNetwork(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// Structural equality.
		if got.Name != orig.Name {
			t.Errorf("%s: name %q != %q", name, got.Name, orig.Name)
		}
		if len(got.Devices) != len(orig.Devices) || len(got.Links) != len(orig.Links) {
			t.Fatalf("%s: size mismatch", name)
		}
		for i, d := range orig.Devices {
			g := got.Devices[i]
			if g.Name != d.Name || g.Kind != d.Kind || g.Loc != d.Loc || len(g.Ports) != len(d.Ports) {
				t.Fatalf("%s: device %d mismatch: %+v vs %+v", name, i, g, d)
			}
		}
		for i, l := range orig.Links {
			g := got.Links[i]
			if g.A.Device.ID != l.A.Device.ID || g.B.Device.ID != l.B.Device.ID ||
				g.A.Index != l.A.Index || g.B.Index != l.B.Index {
				t.Fatalf("%s: link %d endpoints mismatch", name, i)
			}
			if g.Cable.Class != l.Cable.Class || g.GbpsCap != l.GbpsCap || g.Redundant != l.Redundant {
				t.Fatalf("%s: link %d attributes mismatch", name, i)
			}
		}
		// Derived layout state is recomputed, not copied: tray runs match.
		for i, l := range orig.Links {
			if got.Layout.TrayOccupancy(got.Links[i]) != orig.Layout.TrayOccupancy(l) {
				t.Fatalf("%s: link %d tray occupancy not rederived", name, i)
			}
		}
		// Graph invariants survive.
		if got.Connected(nil) != orig.Connected(nil) {
			t.Fatalf("%s: connectivity changed", name)
		}
	}
}

func TestDecodeNetworkRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"not json":       `{nope`,
		"bad device ref": `{"name":"x","devices":[{"name":"a","kind":2,"ports":2}],"links":[{"a_dev":5,"a_port":0,"b_dev":0,"b_port":1,"class":0,"gbps":10}]}`,
		"bad port ref":   `{"name":"x","devices":[{"name":"a","kind":2,"ports":1},{"name":"b","kind":2,"ports":1}],"links":[{"a_dev":0,"a_port":7,"b_dev":1,"b_port":0,"class":0,"gbps":10}]}`,
		"negative ports": `{"name":"x","devices":[{"name":"a","kind":2,"ports":-1}]}`,
		"port reuse": `{"name":"x","devices":[{"name":"a","kind":2,"ports":1},{"name":"b","kind":2,"ports":2}],` +
			`"links":[{"a_dev":0,"a_port":0,"b_dev":1,"b_port":0,"class":0,"gbps":10},` +
			`{"a_dev":0,"a_port":0,"b_dev":1,"b_port":1,"class":0,"gbps":10}]}`,
	}
	for name, in := range cases {
		if _, err := DecodeNetwork(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalIsValidJSON(t *testing.T) {
	n, err := NewLeafSpine(LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1, Uplinks: 1, FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v["name"] != n.Name {
		t.Fatal("name field")
	}
}
