package topology

import "fmt"

// FatTreeConfig parameterizes NewFatTree.
type FatTreeConfig struct {
	K          int     // arity; must be even and >= 2
	FabricGbps float64 // switch-to-switch link speed
	HostGbps   float64 // server uplink speed
}

// DefaultFatTree returns a k=4 fat-tree with 400G fabric and 100G hosts.
func DefaultFatTree(k int) FatTreeConfig {
	return FatTreeConfig{K: k, FabricGbps: 400, HostGbps: 100}
}

// NewFatTree builds the classic k-ary fat-tree: k pods, each with k/2 edge
// (leaf) and k/2 aggregation switches, (k/2)^2 core switches, and k^3/4
// servers. Each pod occupies its own row; the core switches live in row 0.
func NewFatTree(cfg FatTreeConfig) (*Network, error) {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity k=%d must be even and >= 2", k)
	}
	half := k / 2
	n := New(fmt.Sprintf("fattree-k%d", k))

	// Core row: (k/2)^2 cores, 4 per rack.
	cores := make([]*Device, half*half)
	for i := range cores {
		loc := Location{Row: 0, Rack: i / 4, RU: 40 - (i%4)*2, Face: Back}
		cores[i] = n.AddDevice(fmt.Sprintf("core%d", i), CoreSwitch, loc, k)
	}

	for p := 0; p < k; p++ {
		row := p + 1
		// Aggregation switches at the head of the pod row.
		aggs := make([]*Device, half)
		for a := range aggs {
			loc := Location{Row: row, Rack: 0, RU: 40 - a*2, Face: Back}
			aggs[a] = n.AddDevice(fmt.Sprintf("pod%d-agg%d", p, a), AggSwitch, loc, k)
		}
		// Edge switches, one per rack, with their servers below them.
		for e := 0; e < half; e++ {
			rack := e + 1
			leaf := n.AddDevice(fmt.Sprintf("pod%d-edge%d", p, e), LeafSwitch,
				Location{Row: row, Rack: rack, RU: 42, Face: Back}, k)
			for s := 0; s < half; s++ {
				srv := n.AddDevice(fmt.Sprintf("pod%d-edge%d-srv%d", p, e, s), Server,
					Location{Row: row, Rack: rack, RU: 2 + s*2, Face: Back}, 1)
				n.ConnectAuto(n.FreePort(srv), n.FreePort(leaf), cfg.HostGbps)
			}
			for a := 0; a < half; a++ {
				n.ConnectAuto(n.FreePort(leaf), n.FreePort(aggs[a]), cfg.FabricGbps)
			}
		}
		// Aggregation to core: agg a connects to cores [a*half, (a+1)*half).
		for a := 0; a < half; a++ {
			for h := 0; h < half; h++ {
				n.ConnectAuto(n.FreePort(aggs[a]), n.FreePort(cores[a*half+h]), cfg.FabricGbps)
			}
		}
	}
	return n, nil
}

// LeafSpineConfig parameterizes NewLeafSpine.
type LeafSpineConfig struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
	Uplinks      int     // parallel uplinks from each leaf to each spine
	FabricGbps   float64 // per uplink
	HostGbps     float64
}

// DefaultLeafSpine returns a 16-leaf, 4-spine pod with 32 hosts per leaf
// and two parallel 400G uplinks per leaf-spine pair.
func DefaultLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Leaves: 16, Spines: 4, HostsPerLeaf: 32, Uplinks: 2,
		FabricGbps: 400, HostGbps: 100,
	}
}

// NewLeafSpine builds a two-tier leaf-spine fabric: every leaf (one per
// rack) connects to every spine with cfg.Uplinks parallel links. Leaves and
// their hosts fill rows of 8 racks; spines sit end-of-row (racks 8+) spread
// round-robin across the leaf rows, the way mid-scale deployments place
// them to keep uplink runs short and trays uncongested.
func NewLeafSpine(cfg LeafSpineConfig) (*Network, error) {
	if cfg.Leaves <= 0 || cfg.Spines <= 0 {
		return nil, fmt.Errorf("topology: leaf-spine needs leaves>0 and spines>0, got %d/%d", cfg.Leaves, cfg.Spines)
	}
	if cfg.Uplinks <= 0 {
		cfg.Uplinks = 1
	}
	n := New(fmt.Sprintf("leafspine-%dx%d", cfg.Leaves, cfg.Spines))

	const racksPerRow = 8
	rows := (cfg.Leaves + racksPerRow - 1) / racksPerRow
	spines := make([]*Device, cfg.Spines)
	spinePorts := cfg.Leaves * cfg.Uplinks
	for i := range spines {
		loc := Location{
			Row:  1 + i%rows,
			Rack: racksPerRow + i/rows,
			RU:   40, Face: Back,
		}
		spines[i] = n.AddDevice(fmt.Sprintf("spine%d", i), SpineSwitch, loc, spinePorts)
	}
	for l := 0; l < cfg.Leaves; l++ {
		row := 1 + l/racksPerRow
		rack := l % racksPerRow
		leaf := n.AddDevice(fmt.Sprintf("leaf%d", l), LeafSwitch,
			Location{Row: row, Rack: rack, RU: 42, Face: Back},
			cfg.HostsPerLeaf+cfg.Spines*cfg.Uplinks)
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			srv := n.AddDevice(fmt.Sprintf("leaf%d-srv%d", l, h), Server,
				Location{Row: row, Rack: rack, RU: 1 + h, Face: Back}, 1)
			n.ConnectAuto(n.FreePort(srv), n.FreePort(leaf), cfg.HostGbps)
		}
		for s := 0; s < cfg.Spines; s++ {
			for u := 0; u < cfg.Uplinks; u++ {
				link := n.ConnectAuto(n.FreePort(leaf), n.FreePort(spines[s]), cfg.FabricGbps)
				if u > 0 {
					link.Redundant = true
				}
			}
		}
	}
	return n, nil
}
