package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file implements a stable JSON wire form for networks so external
// tooling (dashboards, the maintctl CLI, test fixtures) can consume and
// reconstruct fabric structure. Dynamic state is never serialized — the
// wire form is the static plant only.

// netJSON is the serialized form.
type netJSON struct {
	Name    string       `json:"name"`
	Devices []deviceJSON `json:"devices"`
	Links   []linkJSON   `json:"links"`
}

type deviceJSON struct {
	Name  string `json:"name"`
	Kind  uint8  `json:"kind"`
	Row   int    `json:"row"`
	Rack  int    `json:"rack"`
	RU    int    `json:"ru"`
	Face  uint8  `json:"face"`
	Ports int    `json:"ports"`
}

type linkJSON struct {
	A         int     `json:"a_dev"`
	APort     int     `json:"a_port"`
	BDev      int     `json:"b_dev"`
	BPort     int     `json:"b_port"`
	Class     uint8   `json:"class"`
	Gbps      float64 `json:"gbps"`
	Redundant bool    `json:"redundant,omitempty"`
}

// MarshalJSON implements json.Marshaler for Network.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := netJSON{Name: n.Name}
	for _, d := range n.Devices {
		out.Devices = append(out.Devices, deviceJSON{
			Name: d.Name, Kind: uint8(d.Kind),
			Row: d.Loc.Row, Rack: d.Loc.Rack, RU: d.Loc.RU, Face: uint8(d.Loc.Face),
			Ports: len(d.Ports),
		})
	}
	for _, l := range n.Links {
		out.Links = append(out.Links, linkJSON{
			A:         int(l.A.Device.ID),
			APort:     l.A.Index,
			BDev:      int(l.B.Device.ID),
			BPort:     l.B.Index,
			Class:     uint8(l.Cable.Class),
			Gbps:      l.GbpsCap,
			Redundant: l.Redundant,
		})
	}
	return json.Marshal(out)
}

// WriteJSON streams the network's wire form to w.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(n)
}

// DecodeNetwork reconstructs a network from its wire form: devices are
// re-created at their locations, links re-connected with their recorded
// cable classes and capacities, and the layout re-derives cable runs and
// tray occupancy (those are functions of geometry, not serialized state).
func DecodeNetwork(r io.Reader) (*Network, error) {
	var in netJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	n := New(in.Name)
	for i, d := range in.Devices {
		if d.Ports < 0 {
			return nil, fmt.Errorf("topology: device %d has negative ports", i)
		}
		n.AddDevice(d.Name, DeviceKind(d.Kind), Location{
			Row: d.Row, Rack: d.Rack, RU: d.RU, Face: Face(d.Face),
		}, d.Ports)
	}
	for i, l := range in.Links {
		if l.A < 0 || l.A >= len(n.Devices) || l.BDev < 0 || l.BDev >= len(n.Devices) {
			return nil, fmt.Errorf("topology: link %d references unknown device", i)
		}
		da, db := n.Devices[l.A], n.Devices[l.BDev]
		if l.APort < 0 || l.APort >= len(da.Ports) || l.BPort < 0 || l.BPort >= len(db.Ports) {
			return nil, fmt.Errorf("topology: link %d references unknown port", i)
		}
		pa, pb := da.Ports[l.APort], db.Ports[l.BPort]
		if pa.Link != nil || pb.Link != nil {
			return nil, fmt.Errorf("topology: link %d reuses a connected port", i)
		}
		nl := n.Connect(pa, pb, CableClass(l.Class), l.Gbps)
		nl.Redundant = l.Redundant
	}
	return n, nil
}
