// Package topology models the static structure of a datacenter network:
// devices, ports, transceivers, cables and links, together with the physical
// plant they live in (halls, rows, racks, rack units, cable trays).
//
// The package is deliberately free of dynamic state. Link health, traffic
// and repair state are owned by other packages and stored densely by the
// integer IDs issued here, so a Network value can be shared read-only by
// every subsystem of a simulation.
package topology

import (
	"fmt"
)

// DeviceID identifies a device within one Network. IDs are dense, starting
// at zero, so per-device state can live in slices.
type DeviceID int

// PortID identifies a port within one Network. IDs are dense and global
// across all devices.
type PortID int

// LinkID identifies a link within one Network. IDs are dense.
type LinkID int

// DeviceKind classifies a device by its role in the fabric.
type DeviceKind uint8

// Device kinds, from the edge upward.
const (
	Server DeviceKind = iota
	GPUServer
	LeafSwitch // top-of-rack
	AggSwitch  // aggregation / pod layer
	SpineSwitch
	CoreSwitch
	RailSwitch // rail-optimized AI fabrics
)

var deviceKindNames = [...]string{
	Server:      "server",
	GPUServer:   "gpu-server",
	LeafSwitch:  "leaf",
	AggSwitch:   "agg",
	SpineSwitch: "spine",
	CoreSwitch:  "core",
	RailSwitch:  "rail",
}

// String returns the lowercase kind name.
func (k DeviceKind) String() string {
	if int(k) < len(deviceKindNames) {
		return deviceKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSwitch reports whether the kind forwards traffic (anything that is not
// an end host).
func (k DeviceKind) IsSwitch() bool { return k != Server && k != GPUServer }

// Device is a network element: a server NIC-side host or a switch.
type Device struct {
	ID    DeviceID
	Name  string
	Kind  DeviceKind
	Loc   Location
	Ports []*Port
}

// String returns the device name.
func (d *Device) String() string { return d.Name }

// Port is one pluggable network port on a device. Its transceiver (if the
// attached medium needs one) is mutable: repairs replace transceivers.
type Port struct {
	ID     PortID
	Device *Device
	Index  int // position on the device's panel, 0-based
	Link   *Link
	Xcvr   *Transceiver // nil for ports using DAC or empty ports

	name string // memoized Name; identity is immutable after construction
}

// Name returns "device/pN".
func (p *Port) Name() string {
	if p.name == "" {
		p.name = fmt.Sprintf("%s/p%d", p.Device.Name, p.Index)
	}
	return p.name
}

// Peer returns the port at the other end of p's link, or nil if unlinked.
func (p *Port) Peer() *Port {
	if p.Link == nil {
		return nil
	}
	if p.Link.A == p {
		return p.Link.B
	}
	return p.Link.A
}

// Link is a bidirectional physical link: two ports joined by a cable, with
// transceivers at the ends where the medium requires them.
type Link struct {
	ID        LinkID
	A, B      *Port
	Cable     *Cable
	GbpsCap   float64 // capacity per direction
	Redundant bool    // marked as an intentionally redundant/spare link

	name string // memoized Name; endpoints are immutable after construction
}

// Name returns "a<->b" using the endpoint port names.
func (l *Link) Name() string {
	if l.name == "" {
		l.name = l.A.Name() + "<->" + l.B.Name()
	}
	return l.name
}

// Devices returns the two endpoint devices.
func (l *Link) Devices() (*Device, *Device) { return l.A.Device, l.B.Device }

// Other returns the endpoint of l opposite to device d, or nil if d is not
// an endpoint.
func (l *Link) Other(d DeviceID) *Device {
	switch d {
	case l.A.Device.ID:
		return l.B.Device
	case l.B.Device.ID:
		return l.A.Device
	}
	return nil
}

// HasSeparableFiber reports whether the link's cable detaches from its
// transceivers in the field (LC/MPO trunk fiber), which is what makes
// end-face cleaning a distinct repair action.
func (l *Link) HasSeparableFiber() bool { return l.Cable != nil && l.Cable.Class.Separable() }

// Network is an immutable-after-build datacenter network: all devices,
// ports and links plus the physical layout. Build one with a builder
// (NewFatTree, NewLeafSpine, NewJellyfish, NewXpander, NewAICluster) or
// assemble one manually with AddDevice/Connect for tests.
type Network struct {
	Name    string
	Devices []*Device
	Ports   []*Port
	Links   []*Link
	Layout  *Layout

	adj [][]LinkPeer // by DeviceID
}

// New returns an empty network with the given name and a default layout.
func New(name string) *Network {
	return &Network{Name: name, Layout: NewLayout(DefaultLayoutSpec())}
}

// AddDevice creates a device with n ports at the given location.
func (n *Network) AddDevice(name string, kind DeviceKind, loc Location, ports int) *Device {
	d := &Device{ID: DeviceID(len(n.Devices)), Name: name, Kind: kind, Loc: loc}
	d.Ports = make([]*Port, ports)
	for i := range d.Ports {
		p := &Port{ID: PortID(len(n.Ports)), Device: d, Index: i}
		d.Ports[i] = p
		n.Ports = append(n.Ports, p)
	}
	n.Devices = append(n.Devices, d)
	n.adj = append(n.adj, nil)
	return d
}

// FreePort returns d's lowest-index unconnected port, or nil if none.
func (n *Network) FreePort(d *Device) *Port {
	for _, p := range d.Ports {
		if p.Link == nil {
			return p
		}
	}
	return nil
}

// Connect joins two free ports with a cable of the given class and capacity,
// creating transceivers as the medium requires, and registers the cable's
// physical run with the layout. It panics if either port is already linked —
// always a builder bug.
func (n *Network) Connect(a, b *Port, class CableClass, gbps float64) *Link {
	if a.Link != nil || b.Link != nil {
		panic(fmt.Sprintf("topology: connect %s-%s: port already linked", a.Name(), b.Name()))
	}
	length := n.Layout.CableLength(a, b)
	cable := &Cable{
		Class:   class,
		Cores:   class.DefaultCores(gbps),
		APC:     class == FiberMPO, // MPO trunks here use 8-degree APC end-faces
		LengthM: length,
	}
	l := &Link{ID: LinkID(len(n.Links)), A: a, B: b, Cable: cable, GbpsCap: gbps}
	if class.NeedsTransceiver() {
		a.Xcvr = NewTransceiver(PickModel(class, gbps, len(n.Links)))
		b.Xcvr = NewTransceiver(PickModel(class, gbps, len(n.Links)+1))
	}
	a.Link, b.Link = l, l
	n.Links = append(n.Links, l)
	n.adj[a.Device.ID] = append(n.adj[a.Device.ID], LinkPeer{l, b.Device})
	n.adj[b.Device.ID] = append(n.adj[b.Device.ID], LinkPeer{l, a.Device})
	n.Layout.registerRun(l)
	return l
}

// ConnectAuto is Connect with the cable class chosen from the physical
// distance between the ports, the way deployments choose DAC for in-rack,
// AOC/AEC for short runs, and separate transceivers with trunk fiber for
// longer runs.
func (n *Network) ConnectAuto(a, b *Port, gbps float64) *Link {
	return n.Connect(a, b, ClassForLength(n.Layout.CableLength(a, b), gbps), gbps)
}

// Neighbors returns the adjacency list of d: each entry is a link and the
// device at its far end. The slice is the network's own adjacency storage —
// no allocation per call, so hot loops (ECMP enumeration, per-tick fabric
// sampling) can iterate it freely — and must not be modified.
func (n *Network) Neighbors(d DeviceID) []LinkPeer {
	return n.adj[d]
}

// LinkPeer pairs a link with the device at its far end, as seen from some
// starting device.
type LinkPeer struct {
	Link *Link
	Peer *Device
}

// DevicesOfKind returns all devices of the given kind, in ID order.
func (n *Network) DevicesOfKind(kind DeviceKind) []*Device {
	var out []*Device
	for _, d := range n.Devices {
		if d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

// Hosts returns all end hosts (servers and GPU servers), in ID order.
func (n *Network) Hosts() []*Device {
	var out []*Device
	for _, d := range n.Devices {
		if !d.Kind.IsSwitch() {
			out = append(out, d)
		}
	}
	return out
}

// SwitchLinks returns all links whose both endpoints are switches (the
// fabric links, which are the subject of maintenance experiments), in ID
// order.
func (n *Network) SwitchLinks() []*Link {
	var out []*Link
	for _, l := range n.Links {
		if l.A.Device.Kind.IsSwitch() && l.B.Device.Kind.IsSwitch() {
			out = append(out, l)
		}
	}
	return out
}

// Stats summarizes a network for reports.
type Stats struct {
	Devices, Switches, Hosts int
	Links, FabricLinks       int
	TotalGbps                float64
	ByClass                  map[CableClass]int
}

// Stats computes summary counts.
func (n *Network) Stats() Stats {
	s := Stats{ByClass: make(map[CableClass]int)}
	for _, d := range n.Devices {
		s.Devices++
		if d.Kind.IsSwitch() {
			s.Switches++
		} else {
			s.Hosts++
		}
	}
	for _, l := range n.Links {
		s.Links++
		s.TotalGbps += l.GbpsCap
		s.ByClass[l.Cable.Class]++
		if l.A.Device.Kind.IsSwitch() && l.B.Device.Kind.IsSwitch() {
			s.FabricLinks++
		}
	}
	return s
}
