package topology

import (
	"fmt"
	"math"
)

// Face is the side of a rack a device's ports present on.
type Face uint8

// Rack faces.
const (
	Front Face = iota
	Back
)

// String returns "front" or "back".
func (f Face) String() string {
	if f == Front {
		return "front"
	}
	return "back"
}

// Location places a device in the hall: row, rack slot within the row, rack
// unit within the rack, and which face its ports are on.
type Location struct {
	Row  int
	Rack int // slot within the row
	RU   int // bottom rack-unit of the device
	Face Face
}

// String returns "rR/sS/uU".
func (l Location) String() string { return fmt.Sprintf("r%d/s%d/u%d", l.Row, l.Rack, l.RU) }

// Point is a position in hall coordinates, in meters: X runs along a row,
// Y is height above the floor, Z runs across rows.
type Point struct{ X, Y, Z float64 }

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// LayoutSpec holds the physical dimensions of the hall. The defaults are
// ordinary colo geometry; experiments only depend on them through relative
// distances, so precision is not critical.
type LayoutSpec struct {
	RackWidthM  float64 // rack pitch along a row
	RUHeightM   float64 // height of one rack unit
	RackUnits   int     // rack height in RU (the paper notes racks up to 52U)
	AislePitchM float64 // row-to-row pitch
	TrayHeightM float64 // overhead cable tray height
	PortPitchM  float64 // horizontal spacing of ports on a panel
	PortsPerRow int     // ports per panel row on a switch faceplate
	SlackM      float64 // service-loop slack added to every cable run
}

// DefaultLayoutSpec returns ordinary datacenter-hall geometry.
func DefaultLayoutSpec() LayoutSpec {
	return LayoutSpec{
		RackWidthM:  0.6,
		RUHeightM:   0.0445,
		RackUnits:   48,
		AislePitchM: 2.4,
		TrayHeightM: 2.6,
		PortPitchM:  0.018,
		PortsPerRow: 16,
		SlackM:      1.0,
	}
}

// SegmentID identifies one overhead tray segment. Row trays have
// Cross == false and run along a row; the cross tray joins rows at slot 0.
type SegmentID struct {
	Row   int
	Slot  int
	Cross bool
}

// String returns a compact segment label.
func (s SegmentID) String() string {
	if s.Cross {
		return fmt.Sprintf("xtray/r%d", s.Row)
	}
	return fmt.Sprintf("tray/r%d/s%d", s.Row, s.Slot)
}

// Layout is the physical plant: geometry plus the occupancy of each
// overhead tray segment, which is what couples physically adjacent cables
// for the cascading-failure model.
type Layout struct {
	Spec LayoutSpec

	segOccupancy map[SegmentID][]LinkID
	runs         map[LinkID][]SegmentID
}

// NewLayout returns an empty layout with the given dimensions.
func NewLayout(spec LayoutSpec) *Layout {
	return &Layout{
		Spec:         spec,
		segOccupancy: make(map[SegmentID][]LinkID),
		runs:         make(map[LinkID][]SegmentID),
	}
}

// PortPoint returns the hall coordinates of a port on its device faceplate.
func (ly *Layout) PortPoint(p *Port) Point {
	loc := p.Device.Loc
	col := p.Index % ly.Spec.PortsPerRow
	row := p.Index / ly.Spec.PortsPerRow
	return Point{
		X: float64(loc.Rack)*ly.Spec.RackWidthM + 0.05 + float64(col)*ly.Spec.PortPitchM,
		Y: float64(loc.RU)*ly.Spec.RUHeightM + float64(row)*ly.Spec.RUHeightM*0.5,
		Z: float64(loc.Row) * ly.Spec.AislePitchM,
	}
}

// CableLength estimates the installed cable length between two ports:
// within a rack it is the vertical separation plus slack, otherwise the run
// goes up to the tray, along the row (and across rows if needed), and back
// down.
func (ly *Layout) CableLength(a, b *Port) float64 {
	la, lb := a.Device.Loc, b.Device.Loc
	pa, pb := ly.PortPoint(a), ly.PortPoint(b)
	if la.Row == lb.Row && la.Rack == lb.Rack {
		return math.Abs(pa.Y-pb.Y) + 0.3 + ly.Spec.SlackM
	}
	up := (ly.Spec.TrayHeightM - pa.Y) + (ly.Spec.TrayHeightM - pb.Y)
	along := math.Abs(pa.X - pb.X)
	cross := 0.0
	if la.Row != lb.Row {
		// Route via the cross tray at slot 0 of each row.
		cross = math.Abs(pa.Z-pb.Z) + pa.X + pb.X - 2*along // conservative reroute
		if cross < math.Abs(pa.Z-pb.Z) {
			cross = math.Abs(pa.Z - pb.Z)
		}
		along = pa.X + pb.X
	}
	return up + along + cross + ly.Spec.SlackM
}

// registerRun computes the tray segments a link's cable occupies and
// records them in the occupancy index and on the cable itself.
func (ly *Layout) registerRun(l *Link) {
	la, lb := l.A.Device.Loc, l.B.Device.Loc
	var segs []SegmentID
	if la.Row == lb.Row && la.Rack == lb.Rack {
		// In-rack cable: occupies no overhead tray.
		ly.runs[l.ID] = nil
		return
	}
	if la.Row == lb.Row {
		lo, hi := la.Rack, lb.Rack
		if lo > hi {
			lo, hi = hi, lo
		}
		for s := lo; s <= hi; s++ {
			segs = append(segs, SegmentID{Row: la.Row, Slot: s})
		}
	} else {
		// Down each row to slot 0, then across the cross tray.
		for s := 0; s <= la.Rack; s++ {
			segs = append(segs, SegmentID{Row: la.Row, Slot: s})
		}
		for s := 0; s <= lb.Rack; s++ {
			segs = append(segs, SegmentID{Row: lb.Row, Slot: s})
		}
		lo, hi := la.Row, lb.Row
		if lo > hi {
			lo, hi = hi, lo
		}
		for r := lo; r <= hi; r++ {
			segs = append(segs, SegmentID{Row: r, Cross: true})
		}
	}
	for _, s := range segs {
		ly.segOccupancy[s] = append(ly.segOccupancy[s], l.ID)
	}
	ly.runs[l.ID] = segs
	l.Cable.TraySegments = segs
}

// TrayOccupancy returns the number of cables in the fullest tray segment a
// link traverses — a congestion proxy for how hard the cable is to extract.
func (ly *Layout) TrayOccupancy(l *Link) int {
	max := 0
	for _, s := range ly.runs[l.ID] {
		if n := len(ly.segOccupancy[s]); n > max {
			max = n
		}
	}
	return max
}

// TravelDistanceM returns the aisle walking/driving distance between two
// locations: along the row to the cross aisle and across, Manhattan-style.
func (ly *Layout) TravelDistanceM(from, to Location) float64 {
	dx := math.Abs(float64(from.Rack-to.Rack)) * ly.Spec.RackWidthM
	if from.Row == to.Row {
		return dx
	}
	// Travel via the cross aisle at slot 0.
	return float64(from.Rack+to.Rack)*ly.Spec.RackWidthM +
		math.Abs(float64(from.Row-to.Row))*ly.Spec.AislePitchM
}

// --- Network-level physical queries -------------------------------------

// PortsNear returns the connected ports on the same rack face as p within
// radius meters (panel distance), excluding p itself. These are the ports
// whose cables a manipulation at p risks disturbing.
func (n *Network) PortsNear(p *Port, radiusM float64) []*Port {
	pp := n.Layout.PortPoint(p)
	loc := p.Device.Loc
	var out []*Port
	for _, d := range n.Devices {
		if d.Loc.Row != loc.Row || d.Loc.Rack != loc.Rack || d.Loc.Face != loc.Face {
			continue
		}
		for _, q := range d.Ports {
			if q == p || q.Link == nil {
				continue
			}
			if n.Layout.PortPoint(q).Dist(pp) <= radiusM {
				out = append(out, q)
			}
		}
	}
	return out
}

// OcclusionAt returns the number of connected ports within 10 cm of p —
// the cabling-clutter score that drives perception difficulty (§3.3.3) and
// touch-cascade fan-out.
func (n *Network) OcclusionAt(p *Port) int {
	return len(n.PortsNear(p, 0.10))
}

// LinksSharingTray returns the links (other than l) whose cables share at
// least one overhead tray segment with l, deduplicated, in LinkID order of
// first encounter. Moving l's cable can disturb these.
func (n *Network) LinksSharingTray(l *Link) []*Link {
	seen := map[LinkID]bool{l.ID: true}
	var out []*Link
	for _, s := range n.Layout.runs[l.ID] {
		for _, id := range n.Layout.segOccupancy[s] {
			if !seen[id] {
				seen[id] = true
				out = append(out, n.Links[id])
			}
		}
	}
	return out
}
