package topology

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		n, err := NewFatTree(DefaultFatTree(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		st := n.Stats()
		wantSwitches := 5 * k * k / 4
		wantHosts := k * k * k / 4
		if st.Switches != wantSwitches {
			t.Errorf("k=%d: switches=%d, want %d", k, st.Switches, wantSwitches)
		}
		if st.Hosts != wantHosts {
			t.Errorf("k=%d: hosts=%d, want %d", k, st.Hosts, wantHosts)
		}
		// Fabric links: edge-agg k/2*k/2 per pod * k pods + agg-core (k/2)^2 * k.
		wantFabric := k*k*k/4 + k*k*k/4
		if st.FabricLinks != wantFabric {
			t.Errorf("k=%d: fabric links=%d, want %d", k, st.FabricLinks, wantFabric)
		}
		if !n.Connected(nil) {
			t.Errorf("k=%d: fat-tree not connected", k)
		}
	}
}

func TestFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if _, err := NewFatTree(DefaultFatTree(k)); err == nil {
			t.Errorf("k=%d accepted, want error", k)
		}
	}
}

func TestFatTreeEqualShortestPathsAcrossPods(t *testing.T) {
	n, err := NewFatTree(DefaultFatTree(4))
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Hosts()
	src, dst := hosts[0].ID, hosts[len(hosts)-1].ID
	dist := n.HopDistances(src, nil)
	if dist[dst] != 6 {
		t.Fatalf("cross-pod host distance = %d, want 6 (host-edge-agg-core-agg-edge-host)", dist[dst])
	}
	paths := n.ShortestPaths(src, dst, 64, nil)
	// k=4: 2 aggs x 2 cores = 4 equal-cost paths between cross-pod hosts.
	if len(paths) != 4 {
		t.Fatalf("cross-pod equal-cost paths = %d, want 4", len(paths))
	}
	for _, p := range paths {
		if len(p) != 6 {
			t.Fatalf("path length %d, want 6", len(p))
		}
	}
}

func TestLeafSpineStructure(t *testing.T) {
	cfg := DefaultLeafSpine()
	n, err := NewLeafSpine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Switches != cfg.Leaves+cfg.Spines {
		t.Errorf("switches=%d, want %d", st.Switches, cfg.Leaves+cfg.Spines)
	}
	if st.Hosts != cfg.Leaves*cfg.HostsPerLeaf {
		t.Errorf("hosts=%d", st.Hosts)
	}
	if st.FabricLinks != cfg.Leaves*cfg.Spines*cfg.Uplinks {
		t.Errorf("fabric links=%d, want %d", st.FabricLinks, cfg.Leaves*cfg.Spines*cfg.Uplinks)
	}
	// Each leaf should reach another leaf in exactly 2 hops.
	leaves := n.DevicesOfKind(LeafSwitch)
	dist := n.HopDistances(leaves[0].ID, nil)
	if dist[leaves[1].ID] != 2 {
		t.Errorf("leaf-leaf distance = %d, want 2", dist[leaves[1].ID])
	}
	// Redundant second uplinks are marked.
	var redundant int
	for _, l := range n.Links {
		if l.Redundant {
			redundant++
		}
	}
	if redundant != cfg.Leaves*cfg.Spines*(cfg.Uplinks-1) {
		t.Errorf("redundant links=%d", redundant)
	}
}

func TestLeafSpineRejectsBadConfig(t *testing.T) {
	if _, err := NewLeafSpine(LeafSpineConfig{Leaves: 0, Spines: 2}); err == nil {
		t.Error("accepted zero leaves")
	}
}

func TestJellyfishRegularity(t *testing.T) {
	cfg := DefaultJellyfish()
	n, err := NewJellyfish(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range n.DevicesOfKind(LeafSwitch) {
		fabric := 0
		seen := map[DeviceID]bool{}
		for _, np := range n.Neighbors(sw.ID) {
			if np.Peer.Kind.IsSwitch() {
				fabric++
				if seen[np.Peer.ID] {
					t.Fatalf("parallel fabric edge at %s", sw.Name)
				}
				if np.Peer.ID == sw.ID {
					t.Fatalf("self loop at %s", sw.Name)
				}
				seen[np.Peer.ID] = true
			}
		}
		if fabric != cfg.FabricDegree {
			t.Fatalf("%s fabric degree = %d, want %d", sw.Name, fabric, cfg.FabricDegree)
		}
	}
	if !n.Connected(nil) {
		t.Fatal("jellyfish disconnected")
	}
}

func TestJellyfishDeterministicPerSeed(t *testing.T) {
	build := func(seed uint64) string {
		cfg := DefaultJellyfish()
		cfg.Seed = seed
		n, err := NewJellyfish(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, l := range n.SwitchLinks() {
			s += l.Name() + ";"
		}
		return s
	}
	if build(5) != build(5) {
		t.Fatal("same seed produced different jellyfish wiring")
	}
	if build(5) == build(6) {
		t.Fatal("different seeds produced identical wiring")
	}
}

// Property: random regular graph construction yields simple r-regular graphs
// across a range of seeds and sizes.
func TestRandomRegularGraphProperty(t *testing.T) {
	f := func(seed uint64, nRaw, rRaw uint8) bool {
		n := 6 + int(nRaw%30)
		r := 3 + int(rRaw%4)
		if n*r%2 != 0 {
			n++
		}
		if r >= n {
			return true
		}
		edges, err := randomRegularGraph(n, r, seed)
		if err != nil {
			return false
		}
		deg := make([]int, n)
		seen := map[[2]int]bool{}
		for _, e := range edges {
			if e[0] == e[1] || seen[e] {
				return false
			}
			seen[e] = true
			deg[e[0]]++
			deg[e[1]]++
		}
		for _, d := range deg {
			if d != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestXpanderRegularity(t *testing.T) {
	cfg := DefaultXpander()
	n, err := NewXpander(cfg)
	if err != nil {
		t.Fatal(err)
	}
	switches := n.DevicesOfKind(LeafSwitch)
	if len(switches) != (cfg.Degree+1)*cfg.Lift {
		t.Fatalf("switches=%d, want %d", len(switches), (cfg.Degree+1)*cfg.Lift)
	}
	for _, sw := range switches {
		fabric := 0
		for _, np := range n.Neighbors(sw.ID) {
			if np.Peer.Kind.IsSwitch() {
				fabric++
			}
		}
		if fabric != cfg.Degree {
			t.Fatalf("%s degree=%d, want %d", sw.Name, fabric, cfg.Degree)
		}
	}
	if !n.Connected(nil) {
		t.Fatal("xpander disconnected")
	}
	// Copies of the same base vertex must never be adjacent (lift property).
	for _, l := range n.SwitchLinks() {
		a, b := l.A.Device, l.B.Device
		ai, bi := 0, 0
		if _, err := fmt.Sscanf(a.Name, "xp%d", &ai); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(b.Name, "xp%d", &bi); err != nil {
			t.Fatal(err)
		}
		if ai/cfg.Lift == bi/cfg.Lift {
			t.Fatalf("lift violation: %s adjacent to %s", a.Name, b.Name)
		}
	}
}

func TestAICluster(t *testing.T) {
	cfg := DefaultAICluster()
	n, err := NewAICluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Hosts != cfg.Servers {
		t.Errorf("hosts=%d", st.Hosts)
	}
	if st.Links != cfg.Servers*cfg.RailsPerServer {
		t.Errorf("links=%d, want %d", st.Links, cfg.Servers*cfg.RailsPerServer)
	}
	// Every rail switch has exactly one link to each server.
	for _, rail := range n.DevicesOfKind(RailSwitch) {
		if len(n.Neighbors(rail.ID)) != cfg.Servers {
			t.Errorf("%s has %d links", rail.Name, len(n.Neighbors(rail.ID)))
		}
	}
	if _, err := NewAICluster(AIClusterConfig{}); err == nil {
		t.Error("accepted empty config")
	}
}

func TestEdgeDisjointPaths(t *testing.T) {
	n, err := NewLeafSpine(LeafSpineConfig{Leaves: 4, Spines: 3, HostsPerLeaf: 1, Uplinks: 1, FabricGbps: 400, HostGbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	leaves := n.DevicesOfKind(LeafSwitch)
	got := n.EdgeDisjointPaths(leaves[0].ID, leaves[1].ID, nil)
	if got != 3 {
		t.Fatalf("edge-disjoint leaf-leaf paths = %d, want 3 (one per spine)", got)
	}
	// Excluding one spine's links drops it to 2.
	spine0 := n.DevicesOfKind(SpineSwitch)[0]
	ok := func(l *Link) bool { return l.Other(spine0.ID) == nil }
	if got := n.EdgeDisjointPaths(leaves[0].ID, leaves[1].ID, ok); got != 2 {
		t.Fatalf("with spine0 excluded: %d, want 2", got)
	}
	if n.EdgeDisjointPaths(leaves[0].ID, leaves[0].ID, nil) != 0 {
		t.Fatal("self-flow should be 0")
	}
}

func TestNextHopsTo(t *testing.T) {
	n, err := NewLeafSpine(LeafSpineConfig{Leaves: 3, Spines: 2, HostsPerLeaf: 2, Uplinks: 1, FabricGbps: 400, HostGbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Hosts()
	dst := hosts[len(hosts)-1] // host on leaf2
	hops := n.NextHopsTo(dst.ID, nil)
	// A host on leaf0 has exactly one next hop (its ToR).
	src := hosts[0]
	if len(hops[src.ID]) != 1 {
		t.Fatalf("host next hops = %d, want 1", len(hops[src.ID]))
	}
	// leaf0 has two equal-cost next hops (both spines).
	leaf0 := n.DevicesOfKind(LeafSwitch)[0]
	if len(hops[leaf0.ID]) != 2 {
		t.Fatalf("leaf0 next hops = %d, want 2", len(hops[leaf0.ID]))
	}
	// Destination itself has no next hops.
	if len(hops[dst.ID]) != 0 {
		t.Fatal("dst should have no next hops")
	}
}

func TestConnectedWithExclusions(t *testing.T) {
	n := New("tiny")
	a := n.AddDevice("a", LeafSwitch, Location{}, 2)
	b := n.AddDevice("b", LeafSwitch, Location{Rack: 1}, 2)
	l := n.ConnectAuto(a.Ports[0], b.Ports[0], 100)
	if !n.Connected(nil) {
		t.Fatal("connected pair reported disconnected")
	}
	if n.Connected(func(x *Link) bool { return x != l }) {
		t.Fatal("cut network reported connected")
	}
}

func TestConnectPanicsOnBusyPort(t *testing.T) {
	n := New("tiny")
	a := n.AddDevice("a", LeafSwitch, Location{}, 1)
	b := n.AddDevice("b", LeafSwitch, Location{Rack: 1}, 2)
	n.ConnectAuto(a.Ports[0], b.Ports[0], 100)
	defer func() {
		if recover() == nil {
			t.Fatal("double-connect did not panic")
		}
	}()
	n.ConnectAuto(a.Ports[0], b.Ports[1], 100)
}

func TestCableClassSelection(t *testing.T) {
	cases := []struct {
		len, gbps float64
		want      CableClass
	}{
		{1, 100, DAC},
		{5, 100, AOC},
		{10, 100, FiberLC},
		{50, 100, FiberLC},
		{50, 400, FiberMPO},
		{120, 800, FiberMPO},
	}
	for _, c := range cases {
		if got := ClassForLength(c.len, c.gbps); got != c.want {
			t.Errorf("ClassForLength(%g, %g) = %v, want %v", c.len, c.gbps, got, c.want)
		}
	}
	if got := FiberMPO.DefaultCores(800); got != 8 {
		t.Errorf("800G MPO cores = %d, want 8", got)
	}
	if got := FiberLC.DefaultCores(100); got != 1 {
		t.Errorf("LC cores = %d, want 1", got)
	}
	if got := DAC.DefaultCores(100); got != 0 {
		t.Errorf("DAC cores = %d, want 0", got)
	}
	if !FiberMPO.NeedsTransceiver() || DAC.NeedsTransceiver() {
		t.Error("NeedsTransceiver misclassified")
	}
	if !AOC.Optical() || AEC.Optical() {
		t.Error("Optical misclassified")
	}
}

func TestTransceiversOnlyOnSeparableLinks(t *testing.T) {
	n, err := NewLeafSpine(DefaultLeafSpine())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range n.Links {
		wantXcvr := l.Cable.Class.NeedsTransceiver()
		hasXcvr := l.A.Xcvr != nil && l.B.Xcvr != nil
		if wantXcvr != hasXcvr {
			t.Fatalf("%s: class %v, xcvr presence %v", l.Name(), l.Cable.Class, hasXcvr)
		}
		if l.Cable.Class == FiberMPO && !l.Cable.APC {
			t.Fatalf("%s: MPO cable without APC flag", l.Name())
		}
	}
}

func TestPortGeometryAndNeighborhood(t *testing.T) {
	n, err := NewLeafSpine(DefaultLeafSpine())
	if err != nil {
		t.Fatal(err)
	}
	leaf := n.DevicesOfKind(LeafSwitch)[0]
	p0, p1 := leaf.Ports[0], leaf.Ports[1]
	d := n.Layout.PortPoint(p0).Dist(n.Layout.PortPoint(p1))
	if d <= 0 || d > 0.05 {
		t.Fatalf("adjacent port distance = %gm", d)
	}
	near := n.PortsNear(p0, 0.10)
	if len(near) == 0 {
		t.Fatal("no neighbors found next to a dense ToR port")
	}
	for _, q := range near {
		if q == p0 {
			t.Fatal("PortsNear returned the port itself")
		}
		if q.Link == nil {
			t.Fatal("PortsNear returned an unconnected port")
		}
	}
	if n.OcclusionAt(p0) != len(near) {
		t.Fatal("OcclusionAt disagrees with PortsNear(0.10)")
	}
}

func TestTraySharingAndCableLength(t *testing.T) {
	n, err := NewLeafSpine(DefaultLeafSpine())
	if err != nil {
		t.Fatal(err)
	}
	// A leaf-spine link crosses rows, so it must occupy tray segments and
	// share them with other uplinks.
	var fabric *Link
	for _, l := range n.SwitchLinks() {
		fabric = l
		break
	}
	if len(fabric.Cable.TraySegments) == 0 {
		t.Fatal("cross-row cable has no tray segments")
	}
	if n.Layout.TrayOccupancy(fabric) < 2 {
		t.Fatal("fabric cable shares no tray capacity")
	}
	sharing := n.LinksSharingTray(fabric)
	if len(sharing) == 0 {
		t.Fatal("fabric cable shares tray with no other link")
	}
	for _, l := range sharing {
		if l.ID == fabric.ID {
			t.Fatal("LinksSharingTray returned the link itself")
		}
	}
	// In-rack host link: short, no tray.
	var hostLink *Link
	for _, l := range n.Links {
		if !l.A.Device.Kind.IsSwitch() || !l.B.Device.Kind.IsSwitch() {
			hostLink = l
			break
		}
	}
	if len(hostLink.Cable.TraySegments) != 0 {
		t.Fatal("in-rack cable occupies tray")
	}
	if hostLink.Cable.LengthM <= 0 || hostLink.Cable.LengthM > 5 {
		t.Fatalf("in-rack cable length = %gm", hostLink.Cable.LengthM)
	}
	if fabric.Cable.LengthM <= hostLink.Cable.LengthM {
		t.Fatal("cross-row cable not longer than in-rack cable")
	}
}

func TestTravelDistance(t *testing.T) {
	ly := NewLayout(DefaultLayoutSpec())
	a := Location{Row: 1, Rack: 3}
	b := Location{Row: 1, Rack: 7}
	if d := ly.TravelDistanceM(a, b); d != 4*ly.Spec.RackWidthM {
		t.Fatalf("same-row travel = %g", d)
	}
	c := Location{Row: 3, Rack: 2}
	want := (3+2)*ly.Spec.RackWidthM + 2*ly.Spec.AislePitchM
	if d := ly.TravelDistanceM(a, c); d != want {
		t.Fatalf("cross-row travel = %g, want %g", d, want)
	}
	if ly.TravelDistanceM(a, a) != 0 {
		t.Fatal("self travel != 0")
	}
}

func TestSwitchPathStats(t *testing.T) {
	n, err := NewFatTree(DefaultFatTree(4))
	if err != nil {
		t.Fatal(err)
	}
	st := n.SwitchPathStats(nil)
	if st.Diameter != 4 {
		t.Fatalf("fat-tree k=4 switch diameter = %d, want 4", st.Diameter)
	}
	if st.AvgHops <= 0 || st.AvgHops > 4 {
		t.Fatalf("avg hops = %g", st.AvgHops)
	}
	if st.Pairs != 20*19 {
		t.Fatalf("pairs = %d, want %d", st.Pairs, 20*19)
	}
}

func TestBisectionGbps(t *testing.T) {
	n, err := NewLeafSpine(LeafSpineConfig{Leaves: 4, Spines: 4, HostsPerLeaf: 1, Uplinks: 1, FabricGbps: 100, HostGbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	b := n.BisectionGbps(100, 1, nil)
	if b <= 0 {
		t.Fatal("bisection = 0 on a connected fabric")
	}
	// Full leaf-spine bisection: half the leaves' uplinks = 2 leaves * 4 spines * 100G... the
	// minimum balanced cut cannot exceed total fabric capacity.
	if b > 16*100 {
		t.Fatalf("bisection %g exceeds total fabric capacity", b)
	}
	// Deterministic per seed.
	if b != n.BisectionGbps(100, 1, nil) {
		t.Fatal("bisection not deterministic for fixed seed")
	}
}

func TestStatsAndStrings(t *testing.T) {
	n, err := NewLeafSpine(LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 2, Uplinks: 1, FabricGbps: 400, HostGbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Devices != st.Switches+st.Hosts {
		t.Error("device count mismatch")
	}
	if st.TotalGbps <= 0 {
		t.Error("zero total capacity")
	}
	l := n.Links[0]
	if l.Name() == "" || l.A.Name() == "" {
		t.Error("empty names")
	}
	if l.A.Peer() != l.B {
		t.Error("Peer mismatch")
	}
	if (&Port{Device: n.Devices[0]}).Peer() != nil {
		t.Error("unlinked Peer should be nil")
	}
	if LeafSwitch.String() != "leaf" || Server.String() != "server" {
		t.Error("kind names")
	}
	if DeviceKind(99).String() == "" {
		t.Error("unknown kind String empty")
	}
	if CableClass(99).String() == "" {
		t.Error("unknown class String empty")
	}
	if Front.String() != "front" || Back.String() != "back" {
		t.Error("face names")
	}
	loc := Location{Row: 1, Rack: 2, RU: 3}
	if loc.String() != "r1/s2/u3" {
		t.Errorf("loc = %s", loc)
	}
	var nilX *Transceiver
	if nilX.String() != "<none>" {
		t.Error("nil transceiver String")
	}
	seg := SegmentID{Row: 2, Slot: 5}
	if seg.String() != "tray/r2/s5" {
		t.Errorf("segment = %s", seg)
	}
	if (SegmentID{Row: 1, Cross: true}).String() != "xtray/r1" {
		t.Error("cross segment name")
	}
	if l.Other(l.A.Device.ID) != l.B.Device || l.Other(DeviceID(9999)) != nil {
		t.Error("Other misbehaved")
	}
}
