package topology

import (
	"fmt"
	"math/rand/v2"
)

// JellyfishConfig parameterizes NewJellyfish.
type JellyfishConfig struct {
	Switches       int
	FabricDegree   int // fabric ports per switch used for the random graph
	HostsPerSwitch int
	FabricGbps     float64
	HostGbps       float64
	Seed           uint64
}

// DefaultJellyfish returns a 40-switch jellyfish with fabric degree 8.
func DefaultJellyfish() JellyfishConfig {
	return JellyfishConfig{
		Switches: 40, FabricDegree: 8, HostsPerSwitch: 8,
		FabricGbps: 400, HostGbps: 100, Seed: 1,
	}
}

// NewJellyfish builds a Jellyfish fabric (Singla et al., NSDI'12): switches
// wired as a random regular graph. The construction uses stub matching with
// deterministic edge-swap fixups, so the same seed yields the same wiring.
//
// Jellyfish is the paper's canonical example (§4) of a topology whose
// throughput is excellent but whose irregular wiring loom makes it hard to
// deploy and maintain by hand — exactly what the self-maintainability
// experiments quantify.
func NewJellyfish(cfg JellyfishConfig) (*Network, error) {
	N, r := cfg.Switches, cfg.FabricDegree
	if N < 2 || r < 1 || r >= N {
		return nil, fmt.Errorf("topology: jellyfish needs 2<=switches and 1<=degree<switches, got N=%d r=%d", N, r)
	}
	if N*r%2 != 0 {
		return nil, fmt.Errorf("topology: jellyfish N*r=%d*%d must be even", N, r)
	}
	pairs, err := randomRegularGraph(N, r, cfg.Seed)
	if err != nil {
		return nil, err
	}
	n := New(fmt.Sprintf("jellyfish-n%d-r%d", N, r))
	switches := placeTorRow(n, "jf", N, r+cfg.HostsPerSwitch)
	addHosts(n, switches, cfg.HostsPerSwitch, cfg.HostGbps)
	for _, e := range pairs {
		n.ConnectAuto(n.FreePort(switches[e[0]]), n.FreePort(switches[e[1]]), cfg.FabricGbps)
	}
	return n, nil
}

// XpanderConfig parameterizes NewXpander.
type XpanderConfig struct {
	Degree         int // fabric degree d; the base graph is K_{d+1}
	Lift           int // lift factor: switches = (d+1)*Lift
	HostsPerSwitch int
	FabricGbps     float64
	HostGbps       float64
	Seed           uint64
}

// DefaultXpander returns a d=8, lift=5 Xpander (45 switches).
func DefaultXpander() XpanderConfig {
	return XpanderConfig{
		Degree: 8, Lift: 5, HostsPerSwitch: 8,
		FabricGbps: 400, HostGbps: 100, Seed: 1,
	}
}

// NewXpander builds an Xpander fabric (Valadarsky et al., CoNEXT'16) by
// random k-lifting of the complete graph K_{d+1}: each vertex becomes Lift
// copies and each base edge becomes a random perfect matching between the
// two copy groups. The result is d-regular with (d+1)*Lift switches.
func NewXpander(cfg XpanderConfig) (*Network, error) {
	d, k := cfg.Degree, cfg.Lift
	if d < 2 || k < 1 {
		return nil, fmt.Errorf("topology: xpander needs degree>=2 and lift>=1, got d=%d k=%d", d, k)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9a7e))
	N := (d + 1) * k
	n := New(fmt.Sprintf("xpander-d%d-k%d", d, k))
	switches := placeTorRow(n, "xp", N, d+cfg.HostsPerSwitch)
	addHosts(n, switches, cfg.HostsPerSwitch, cfg.HostGbps)

	idx := func(base, copy int) int { return base*k + copy }
	for u := 0; u <= d; u++ {
		for v := u + 1; v <= d; v++ {
			perm := rng.Perm(k)
			for c := 0; c < k; c++ {
				a, b := switches[idx(u, c)], switches[idx(v, perm[c])]
				n.ConnectAuto(n.FreePort(a), n.FreePort(b), cfg.FabricGbps)
			}
		}
	}
	return n, nil
}

// randomRegularGraph returns the edge list of a simple r-regular graph on
// nodes 0..n-1 via stub matching with edge-swap repair.
func randomRegularGraph(n, r int, seed uint64) ([][2]int, error) {
	rng := rand.New(rand.NewPCG(seed, 0x1e11f))
	type edge = [2]int
	norm := func(a, b int) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	for attempt := 0; attempt < 100; attempt++ {
		stubs := make([]int, 0, n*r)
		for v := 0; v < n; v++ {
			for i := 0; i < r; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		have := make(map[edge]bool, n*r/2)
		edges := make([]edge, 0, n*r/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			e := norm(a, b)
			if a == b || have[e] {
				// Try to repair by swapping with a previous edge.
				repaired := false
				for try := 0; try < 200 && len(edges) > 0; try++ {
					j := rng.IntN(len(edges))
					c, d := edges[j][0], edges[j][1]
					// Swap partners: (a,c) and (b,d).
					e1, e2 := norm(a, c), norm(b, d)
					if a != c && b != d && !have[e1] && !have[e2] && e1 != e2 {
						delete(have, edges[j])
						edges[j] = e1
						have[e1] = true
						e = e2
						repaired = true
						break
					}
				}
				if !repaired {
					ok = false
					break
				}
			}
			have[e] = true
			edges = append(edges, e)
		}
		if ok {
			return edges, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to construct %d-regular graph on %d nodes", r, n)
}

// placeTorRow places N top-of-rack switches, one per rack, across rows of
// eight racks, and returns them.
func placeTorRow(n *Network, prefix string, N, ports int) []*Device {
	const racksPerRow = 8
	out := make([]*Device, N)
	for i := range out {
		loc := Location{Row: i / racksPerRow, Rack: i % racksPerRow, RU: 42, Face: Back}
		out[i] = n.AddDevice(fmt.Sprintf("%s%d", prefix, i), LeafSwitch, loc, ports)
	}
	return out
}

// addHosts attaches h servers to each switch at its rack.
func addHosts(n *Network, switches []*Device, h int, gbps float64) {
	for _, sw := range switches {
		for s := 0; s < h; s++ {
			loc := sw.Loc
			loc.RU = 1 + s*2
			srv := n.AddDevice(fmt.Sprintf("%s-srv%d", sw.Name, s), Server, loc, 1)
			n.ConnectAuto(n.FreePort(srv), n.FreePort(sw), gbps)
		}
	}
}

// AIClusterConfig parameterizes NewAICluster.
type AIClusterConfig struct {
	Servers        int // GPU servers
	RailsPerServer int // GPUs/NICs per server, one rail each
	RailGbps       float64
}

// DefaultAICluster returns a 64-server, 8-rail (512-GPU) training pod.
func DefaultAICluster() AIClusterConfig {
	return AIClusterConfig{Servers: 64, RailsPerServer: 8, RailGbps: 400}
}

// NewAICluster builds a rail-optimized GPU training fabric: every server
// has one NIC per rail, and rail switch r connects NIC r of every server.
// A single rail link failure strands its GPU's bandwidth, which is the
// paper's motivating AI-cluster dilemma (§1): redundancy per rail is
// unaffordable, so repair speed is what bounds lost GPU-hours.
func NewAICluster(cfg AIClusterConfig) (*Network, error) {
	if cfg.Servers <= 0 || cfg.RailsPerServer <= 0 {
		return nil, fmt.Errorf("topology: ai cluster needs servers>0 and rails>0, got %d/%d", cfg.Servers, cfg.RailsPerServer)
	}
	n := New(fmt.Sprintf("aicluster-%dx%d", cfg.Servers, cfg.RailsPerServer))
	rails := make([]*Device, cfg.RailsPerServer)
	for r := range rails {
		loc := Location{Row: 0, Rack: r / 2, RU: 40 - (r%2)*2, Face: Back}
		rails[r] = n.AddDevice(fmt.Sprintf("rail%d", r), RailSwitch, loc, cfg.Servers)
	}
	const serversPerRack = 4
	for s := 0; s < cfg.Servers; s++ {
		rack := s % 8
		row := 1 + s/(8*serversPerRack)
		ru := 2 + (s/8%serversPerRack)*10
		srv := n.AddDevice(fmt.Sprintf("gpusrv%d", s), GPUServer,
			Location{Row: row, Rack: rack, RU: ru, Face: Back}, cfg.RailsPerServer)
		for r := 0; r < cfg.RailsPerServer; r++ {
			n.ConnectAuto(srv.Ports[r], n.FreePort(rails[r]), cfg.RailGbps)
		}
	}
	return n, nil
}
