package topology

// This file implements the graph algorithms the routing and maintainability
// layers need. All of them take an optional "usable" predicate so callers
// can compute over the healthy subgraph (failed or drained links excluded).
// A nil predicate means every link is usable.

// Usable filters links for graph computations.
type Usable func(*Link) bool

func (n *Network) usableAdj(d DeviceID, ok Usable) []LinkPeer {
	if ok == nil {
		return n.adj[d]
	}
	entries := n.adj[d]
	out := make([]LinkPeer, 0, len(entries))
	for _, e := range entries {
		if ok(e.Link) {
			out = append(out, e)
		}
	}
	return out
}

// HopDistances returns BFS hop counts from src to every device over usable
// links; unreachable devices get -1.
func (n *Network) HopDistances(src DeviceID, ok Usable) []int {
	dist := make([]int, len(n.Devices))
	n.HopDistancesInto(src, ok, dist, nil)
	return dist
}

// HopDistancesInto is HopDistances into caller-owned buffers: dist must have
// one slot per device and is fully overwritten; queue is BFS scratch whose
// backing array is reused and returned. Unlike HopDistances it performs no
// allocations (beyond growing queue on first use), which is what lets the
// routing layer recompute distance fields from a pool on the fault hot path.
func (n *Network) HopDistancesInto(src DeviceID, ok Usable, dist []int, queue []DeviceID) []DeviceID {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	for head := 0; head < len(queue); head++ {
		d := queue[head]
		for _, e := range n.adj[d] {
			if ok != nil && !ok(e.Link) {
				continue
			}
			p := e.Peer.ID
			if dist[p] < 0 {
				dist[p] = dist[d] + 1
				queue = append(queue, p)
			}
		}
	}
	return queue
}

// ShortestPathLinks visits every usable link that lies on some shortest path
// toward the destination whose BFS field is dist — exactly the links whose
// state change can alter dist or the ECMP DAG built over it. A usable link is
// on a shortest path iff both endpoints are reachable and their distances
// differ by one ("tight" w.r.t. dist). Routing records these as the reverse
// dependency index for incremental cache invalidation.
func (n *Network) ShortestPathLinks(dist []int, ok Usable, visit func(*Link)) {
	for _, l := range n.Links {
		if ok != nil && !ok(l) {
			continue
		}
		da, db := dist[l.A.Device.ID], dist[l.B.Device.ID]
		if da < 0 || db < 0 {
			continue
		}
		if da-db == 1 || db-da == 1 {
			visit(l)
		}
	}
}

// NextHopsTo returns, for every device, the set of usable links that lie on
// a shortest path toward dst — the ECMP next-hop sets routing fans traffic
// over. Devices that cannot reach dst get an empty set.
func (n *Network) NextHopsTo(dst DeviceID, ok Usable) [][]*Link {
	dist := n.HopDistances(dst, ok)
	hops := make([][]*Link, len(n.Devices))
	for d := range n.Devices {
		if dist[d] <= 0 {
			continue // dst itself or unreachable
		}
		for _, e := range n.usableAdj(DeviceID(d), ok) {
			if pd := dist[e.Peer.ID]; pd >= 0 && pd == dist[d]-1 {
				hops[d] = append(hops[d], e.Link)
			}
		}
	}
	return hops
}

// Path is a sequence of links from a source to a destination.
type Path []*Link

// ShortestPaths enumerates up to limit distinct shortest paths from src to
// dst over usable links (depth-first over the ECMP DAG). It returns nil if
// dst is unreachable.
func (n *Network) ShortestPaths(src, dst DeviceID, limit int, ok Usable) []Path {
	if src == dst {
		return nil
	}
	dist := n.HopDistances(dst, ok)
	if dist[src] < 0 {
		return nil
	}
	if limit <= 0 {
		limit = 16
	}
	var out []Path
	var cur Path
	var walk func(d DeviceID)
	walk = func(d DeviceID) {
		if len(out) >= limit {
			return
		}
		if d == dst {
			out = append(out, append(Path(nil), cur...))
			return
		}
		for _, e := range n.usableAdj(d, ok) {
			if pd := dist[e.Peer.ID]; pd >= 0 && pd == dist[d]-1 {
				cur = append(cur, e.Link)
				walk(e.Peer.ID)
				cur = cur[:len(cur)-1]
				if len(out) >= limit {
					return
				}
			}
		}
	}
	walk(src)
	return out
}

// Connected reports whether all devices are mutually reachable over usable
// links. An empty network is connected.
func (n *Network) Connected(ok Usable) bool {
	if len(n.Devices) == 0 {
		return true
	}
	dist := n.HopDistances(0, ok)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// EdgeDisjointPaths returns the number of edge-disjoint usable paths
// between src and dst (BFS augmenting paths on unit edge capacities, i.e.
// undirected max-flow). It is the link-level fault tolerance of the pair.
func (n *Network) EdgeDisjointPaths(src, dst DeviceID, ok Usable) int {
	if src == dst {
		return 0
	}
	used := make(map[LinkID]int8) // 0 free, +1 used A->B, -1 used B->A
	flow := 0
	for {
		// BFS for an augmenting path. Residual rule for undirected unit
		// edges: an unused edge can be crossed either way; a used edge can
		// only be crossed against its flow (cancelling it).
		prevLink := make([]*Link, len(n.Devices))
		prevDev := make([]DeviceID, len(n.Devices))
		seen := make([]bool, len(n.Devices))
		seen[src] = true
		queue := []DeviceID{src}
		found := false
	bfs:
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			for _, e := range n.usableAdj(d, ok) {
				p := e.Peer.ID
				if seen[p] {
					continue
				}
				dir := int8(1)
				if e.Link.B.Device.ID == d {
					dir = -1
				}
				// Crossing d->p uses the edge in direction dir; allowed if
				// edge is free or currently carries flow in the opposite
				// direction.
				if used[e.Link.ID] == dir {
					continue
				}
				seen[p] = true
				prevLink[p] = e.Link
				prevDev[p] = d
				if p == dst {
					found = true
					break bfs
				}
				queue = append(queue, p)
			}
		}
		if !found {
			return flow
		}
		// Apply the augmenting path.
		for d := dst; d != src; d = prevDev[d] {
			l := prevLink[d]
			dir := int8(1)
			if l.B.Device.ID == prevDev[d] {
				dir = -1
			}
			if used[l.ID] == -dir {
				used[l.ID] = 0 // cancelled
			} else {
				used[l.ID] = dir
			}
		}
		flow++
	}
}

// PathStats summarizes shortest-path structure over the switch subgraph.
type PathStats struct {
	Diameter int
	AvgHops  float64
	Pairs    int
}

// SwitchPathStats computes hop-count statistics between all switch pairs
// over usable links. Unreachable pairs are excluded from AvgHops but force
// Diameter to -1 (disconnected).
func (n *Network) SwitchPathStats(ok Usable) PathStats {
	switches := make([]DeviceID, 0)
	for _, d := range n.Devices {
		if d.Kind.IsSwitch() {
			switches = append(switches, d.ID)
		}
	}
	var st PathStats
	var sum, count int
	for _, s := range switches {
		dist := n.HopDistances(s, ok)
		for _, t := range switches {
			if t == s {
				continue
			}
			if dist[t] < 0 {
				st.Diameter = -1
				continue
			}
			sum += dist[t]
			count++
			if st.Diameter >= 0 && dist[t] > st.Diameter {
				st.Diameter = dist[t]
			}
		}
	}
	st.Pairs = count
	if count > 0 {
		st.AvgHops = float64(sum) / float64(count)
	}
	return st
}

// BisectionGbps estimates worst-case bisection bandwidth over usable links
// by evaluating trials random balanced bipartitions of the switches and
// taking the minimum observed cut capacity. seed makes the estimate
// deterministic. For structured topologies the natural cut is also tried.
func (n *Network) BisectionGbps(trials int, seed uint64, ok Usable) float64 {
	switches := make([]*Device, 0)
	for _, d := range n.Devices {
		if d.Kind.IsSwitch() {
			switches = append(switches, d)
		}
	}
	if len(switches) < 2 {
		return 0
	}
	if trials <= 0 {
		trials = 50
	}
	cut := func(side map[DeviceID]bool) float64 {
		var c float64
		for _, l := range n.Links {
			if ok != nil && !ok(l) {
				continue
			}
			a, b := l.A.Device, l.B.Device
			if !a.Kind.IsSwitch() || !b.Kind.IsSwitch() {
				continue
			}
			if side[a.ID] != side[b.ID] {
				c += l.GbpsCap
			}
		}
		return c
	}
	// Natural split: first half vs second half in ID order.
	side := make(map[DeviceID]bool, len(switches))
	for i, d := range switches {
		side[d.ID] = i < len(switches)/2
	}
	best := cut(side)
	rng := newSplitMix(seed)
	idx := make([]int, len(switches))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < trials; t++ {
		// Fisher-Yates with the local PRNG.
		for i := len(idx) - 1; i > 0; i-- {
			j := int(rng() % uint64(i+1))
			idx[i], idx[j] = idx[j], idx[i]
		}
		for pos, i := range idx {
			side[switches[i].ID] = pos < len(switches)/2
		}
		if c := cut(side); c < best {
			best = c
		}
	}
	return best
}

// newSplitMix returns a tiny deterministic PRNG (SplitMix64) for internal
// sampling that must not perturb any model stream.
func newSplitMix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
