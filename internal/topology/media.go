package topology

import (
	"fmt"
	"sync/atomic"
)

// CableClass classifies the physical medium of a link, following §3.1 of
// the paper: DAC for short copper, AEC/AOC for integrated active cables,
// and separate transceivers with LC or MPO trunk fiber for longer runs.
type CableClass uint8

// Cable classes.
const (
	DAC      CableClass = iota // direct-attach copper, no transceiver
	AEC                        // active electrical cable, integrated ends
	AOC                        // active optical cable, integrated ends
	FiberLC                    // single-channel fiber, separable from transceiver
	FiberMPO                   // multi-channel trunk fiber, separable
)

var cableClassNames = [...]string{
	DAC:      "DAC",
	AEC:      "AEC",
	AOC:      "AOC",
	FiberLC:  "LC",
	FiberMPO: "MPO",
}

// String returns the conventional short name.
func (c CableClass) String() string {
	if int(c) < len(cableClassNames) {
		return cableClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// NeedsTransceiver reports whether links of this class have field-pluggable
// transceivers at the ends (and can therefore be reseated independently of
// the cable).
func (c CableClass) NeedsTransceiver() bool { return c == FiberLC || c == FiberMPO }

// Separable reports whether the cable detaches from the transceiver in the
// field, making end-face inspection and cleaning a meaningful repair.
func (c CableClass) Separable() bool { return c == FiberLC || c == FiberMPO }

// Optical reports whether the medium is fiber.
func (c CableClass) Optical() bool { return c == AOC || c == FiberLC || c == FiberMPO }

// DefaultCores returns the number of fiber cores (channels) in a cable of
// this class at the given link speed: one core carries 100 Gbps, so an
// 800 Gbps MPO trunk has 8 cores (§3.2).
func (c CableClass) DefaultCores(gbps float64) int {
	switch c {
	case FiberMPO, AOC:
		cores := int(gbps / 100)
		if cores < 2 {
			cores = 2
		}
		return cores
	case FiberLC:
		return 1
	default:
		return 0
	}
}

// ClassForLength chooses the deployment-typical cable class for a run of
// the given length: DAC within ~3 m, AOC for adjacent-rack runs, and
// separate transceivers with structured trunk fiber beyond that (runs that
// leave the rack neighbourhood go through patch panels and trays, which is
// what makes them separable). High-speed (>=400 Gbps) links use MPO trunks;
// slower separable links use LC.
func ClassForLength(lengthM, gbps float64) CableClass {
	switch {
	case lengthM <= 3:
		return DAC
	case lengthM <= 6:
		return AOC
	case gbps >= 400:
		return FiberMPO
	default:
		return FiberLC
	}
}

// Cable is the physical cable of one link. Replacing a cable during repair
// swaps the whole value.
type Cable struct {
	Class   CableClass
	Cores   int  // fiber channels; 0 for copper
	APC     bool // 8-degree angled end-face polish (MPO trunks)
	LengthM float64
	// TraySegments is filled in by the layout when the link is registered:
	// the overhead tray segments this cable's run occupies.
	TraySegments []SegmentID
}

// TransceiverModel describes one model in the (very diverse, §4) fleet of
// pluggable transceivers. The fields that matter to robotics are the
// mechanical ones: the backend grip geometry and pull-tab style vary by
// model even though the electrical front end is standardized.
type TransceiverModel struct {
	Name      string
	Form      string // QSFP28, QSFP56, QSFP-DD, OSFP
	Gbps      float64
	GripStyle int // mechanical backend variant; drives recognition difficulty
	TabStyle  int // pull-tab variant
}

// ModelCatalog is the fleet's transceiver diversity: the paper reports
// "literally tens of different designs" in production (§4). Experiments vary
// the effective diversity by truncating this list.
var ModelCatalog = buildCatalog()

func buildCatalog() []TransceiverModel {
	forms := []struct {
		form string
		gbps float64
	}{
		{"QSFP28", 100},
		{"QSFP56", 200},
		{"QSFP-DD", 400},
		{"OSFP", 800},
	}
	var out []TransceiverModel
	vendor := 0
	for _, f := range forms {
		for v := 0; v < 8; v++ { // 8 vendor variants per form factor: 32 models
			out = append(out, TransceiverModel{
				Name:      fmt.Sprintf("%s-v%02d", f.form, vendor),
				Form:      f.form,
				Gbps:      f.gbps,
				GripStyle: vendor % 5,
				TabStyle:  vendor % 3,
			})
			vendor++
		}
	}
	return out
}

// PickModel deterministically assigns a catalog model compatible with the
// class and speed, using salt to spread models across a build the way mixed
// procurement does.
func PickModel(class CableClass, gbps float64, salt int) *TransceiverModel {
	var compatible []int
	for i := range ModelCatalog {
		if ModelCatalog[i].Gbps >= gbps {
			compatible = append(compatible, i)
		}
	}
	if len(compatible) == 0 {
		// faster than anything in the catalog: take the fastest models
		for i := range ModelCatalog {
			if ModelCatalog[i].Gbps == 800 {
				compatible = append(compatible, i)
			}
		}
	}
	return &ModelCatalog[compatible[salt%len(compatible)]]
}

// Transceiver is one physical pluggable module occupying a port. Repairs
// may replace it, so it carries its own serial identity.
type Transceiver struct {
	Model  *TransceiverModel
	Serial int
}

var xcvrSerial atomic.Int64

// NewTransceiver mints a transceiver of the given model with a fresh
// serial number. Serial numbers are process-global (atomic: worlds build
// and run concurrently under the experiment runner); they exist only to
// distinguish "same module reseated" from "new module installed" and
// never appear in deterministic output.
func NewTransceiver(m *TransceiverModel) *Transceiver {
	return &Transceiver{Model: m, Serial: int(xcvrSerial.Add(1))}
}

// String returns "model#serial".
func (t *Transceiver) String() string {
	if t == nil {
		return "<none>"
	}
	return fmt.Sprintf("%s#%d", t.Model.Name, t.Serial)
}
