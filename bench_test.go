// Package repro_bench exposes every experiment of EXPERIMENTS.md as a
// benchmark target (one per paper table/figure, quick parameters) plus
// micro-benchmarks of the substrates. Regenerate the full-size artifacts
// with cmd/experiments; run these with:
//
//	go test -bench=. -benchmem
package repro_bench

import (
	"context"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/robotapi"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/selfmaint"
)

func quick() scenario.RepairParams {
	p := scenario.QuickRepairParams()
	p.Seeds = []uint64{7}
	p.Duration = 45 * sim.Day
	return p
}

// BenchmarkServiceWindow regenerates T1/F1: service windows by automation
// level.
func BenchmarkServiceWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := scenario.T1ServiceWindow(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEscalationLadder regenerates T2: ladder outcome shares.
func BenchmarkEscalationLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T2Escalation(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutomationLevels regenerates F2: availability vs level.
func BenchmarkAutomationLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := scenario.F2Availability(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCascadeMitigation regenerates F3: cascade amplification by
// repair policy (the impact-aware pre-drain ablation).
func BenchmarkCascadeMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := scenario.F3Cascades(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProactive regenerates T3: proactive/predictive policy ablation.
func BenchmarkProactive(b *testing.B) {
	p := quick()
	p.Duration = 90 * sim.Day
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T3Proactive(scenario.Serial(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictor regenerates T4: failure-predictor quality.
func BenchmarkPredictor(b *testing.B) {
	p := quick()
	p.Duration = 120 * sim.Day
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T4Predictor(scenario.Serial(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRightProvisioning regenerates T5: redundancy vs repair regime.
func BenchmarkRightProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T5RightProvisioning(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintainabilityIndex regenerates F4: the topology tradeoff.
func BenchmarkMaintainabilityIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := scenario.F4Maintainability(scenario.Serial()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSizing regenerates F5: window/backlog vs robot count.
func BenchmarkFleetSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := scenario.F5FleetSizing(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobotPrimitives regenerates T6: robot task micro-timings.
func BenchmarkRobotPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T6RobotTimings(scenario.Serial(), 40, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlapTailLatency regenerates F6: tail latency during a flapping
// incident.
func BenchmarkFlapTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.F6FlapLatency(scenario.Serial(), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAICluster regenerates T7: GPU-hours lost vs repair regime.
func BenchmarkAICluster(b *testing.B) {
	p := quick()
	p.Duration = 90 * sim.Day
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T7AICluster(scenario.Serial(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiversity regenerates T8: task success vs hardware diversity.
func BenchmarkDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.T8Diversity(scenario.Serial(), 80, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeatWindowAblation regenerates A1: dedup-window sensitivity.
func BenchmarkRepeatWindowAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.A1RepeatWindow(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMobilityScopeAblation regenerates A2: rack/row/hall scopes.
func BenchmarkMobilityScopeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.A2MobilityScope(scenario.Serial(), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkSimulatedDay measures raw simulation throughput: one virtual day
// of a busy L3 hall per iteration.
func BenchmarkSimulatedDay(b *testing.B) {
	c, err := selfmaint.NewCluster(
		selfmaint.WithSeed(1),
		selfmaint.WithLevel(selfmaint.L3),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(50),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Run(selfmaint.Day)
	}
}

// BenchmarkBusDispatch measures the pipeline bus's publish path: one event
// stamped and delivered synchronously to a tap plus four topic subscribers
// — the hot path every alert, ticket event and dispatch crosses.
func BenchmarkBusDispatch(b *testing.B) {
	eng := sim.NewEngine(1)
	pb := bus.New(eng)
	var sink int
	pb.Tap(func(bus.Event) { sink++ })
	for i := 0; i < 4; i++ {
		pb.Subscribe(bus.TopicAlert, func(bus.Event) { sink++ })
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pb.Publish(bus.TopicAlert, bus.Alert{})
	}
	_ = sink
}

// BenchmarkPipelineDay measures one virtual day flowing through the full
// Sense→Triage→Plan→Act pipeline (L4: reactive, proactive and predictive
// stages all live) and reports the bus traffic it generates.
func BenchmarkPipelineDay(b *testing.B) {
	w, err := scenario.Build(scenario.Options{
		Seed: 1, Level: core.L4, Robots: true, Techs: 2, FaultScale: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	events := 0
	w.Bus.Tap(func(bus.Event) { events++ })
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Run(w.Eng.Now() + sim.Day)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/day")
}

// BenchmarkRoutingEvaluate measures one full traffic-matrix evaluation on
// the standard hall.
func BenchmarkRoutingEvaluate(b *testing.B) {
	net, err := scenario.StandardHall()
	if err != nil {
		b.Fatal(err)
	}
	r := routing.NewRouter(net, nil)
	tm := routing.UniformMatrix(net, 1000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Invalidate() // force cold caches: the worst case after a failure
		_ = r.Evaluate(tm)
	}
}

// BenchmarkEvaluateSteadyState measures the per-cell hot loop: repeated
// assessment of an unchanged fabric through a reusable workspace. The
// routing tier-1 tests pin this path at zero allocations per op.
func BenchmarkEvaluateSteadyState(b *testing.B) {
	net, err := scenario.StandardHall()
	if err != nil {
		b.Fatal(err)
	}
	r := routing.NewRouter(net, nil)
	tm := routing.UniformMatrix(net, 1000)
	var ws routing.Workspace
	r.EvaluateInto(&ws, tm) // warm caches and grow buffers
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.EvaluateInto(&ws, tm)
	}
}

// BenchmarkRouterFlapChurn measures re-assessment cost while one fabric
// link flaps up and down, comparing targeted per-link invalidation against
// a blanket cache flush on a k=8 fat-tree. The incremental case only
// recomputes destinations whose shortest paths crossed the flapping link.
func BenchmarkRouterFlapChurn(b *testing.B) {
	net, err := topology.NewFatTree(topology.DefaultFatTree(8))
	if err != nil {
		b.Fatal(err)
	}
	down := map[topology.LinkID]bool{}
	health := func(id topology.LinkID) bool { return !down[id] }
	l := net.SwitchLinks()[0]
	run := func(b *testing.B, invalidate func(r *routing.Router)) {
		down[l.ID] = false
		r := routing.NewRouter(net, health)
		tm := routing.UniformMatrix(net, 4000)
		var ws routing.Workspace
		r.EvaluateInto(&ws, tm) // warm
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			down[l.ID] = !down[l.ID]
			invalidate(r)
			_ = r.EvaluateInto(&ws, tm)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		run(b, func(r *routing.Router) { r.InvalidateLink(l.ID) })
	})
	b.Run("blanket", func(b *testing.B) {
		run(b, func(r *routing.Router) { r.Invalidate() })
	})
}

// BenchmarkUniformEvaluate measures full-injection uniform evaluation on
// the F4 xpander build — the maintindex probe that dominated the quick
// suite before the destination-rooted engine. Sub-benchmarks cover the cold
// path (every destination rebuilt), the maintindex-style drain/undrain
// sweep step (shelved structures restore via the subgraph signature), and
// the warm steady state (zero allocations).
func BenchmarkUniformEvaluate(b *testing.B) {
	net, err := topology.NewXpander(topology.XpanderConfig{
		Degree: 9, Lift: 2, HostsPerSwitch: 8,
		FabricGbps: 100, HostGbps: 100, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var offered float64
	for _, h := range net.Hosts() {
		for _, p := range h.Ports {
			if p.Link != nil {
				offered += p.Link.GbpsCap
			}
		}
	}
	tm := routing.UniformMatrix(net, offered)
	b.Run("cold", func(b *testing.B) {
		r := routing.NewRouter(net, nil)
		var ws routing.Workspace
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Invalidate()
			_ = r.EvaluateInto(&ws, tm)
		}
	})
	b.Run("drain-sweep-step", func(b *testing.B) {
		r := routing.NewRouter(net, nil)
		var ws routing.Workspace
		l := net.SwitchLinks()[0]
		r.EvaluateInto(&ws, tm) // warm
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Drain(l.ID)
			_ = r.EvaluateInto(&ws, tm)
			r.Undrain(l.ID)
			_ = r.EvaluateInto(&ws, tm)
		}
	})
	b.Run("warm", func(b *testing.B) {
		r := routing.NewRouter(net, nil)
		var ws routing.Workspace
		r.EvaluateInto(&ws, tm)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.EvaluateInto(&ws, tm)
		}
	})
}

// BenchmarkTopologyBuild measures fabric construction.
func BenchmarkTopologyBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewFatTree(topology.DefaultFatTree(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireProtocol regenerates F7: robot-API round trips over TCP
// loopback (plan requests, which carry the contacted-cable report).
func BenchmarkWireProtocol(b *testing.B) {
	w, err := scenario.Build(scenario.Options{
		Seed: 1, BuildNet: scenario.SmallHall,
		Robots: true, NoController: true, FaultScale: 0.001,
	})
	if err != nil {
		b.Fatal(err)
	}
	svc := robotapi.NewService(w.Eng, w.Net, w.Inj, w.Fleet)
	srv, err := robotapi.Serve("127.0.0.1:0", svc)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	c, err := robotapi.DialClient(ctx, srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	link := int(w.Net.SwitchLinks()[0].ID)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Plan(ctx, robotapi.TaskSpec{Link: link, End: "A", Action: "reseat"}); err != nil {
			b.Fatal(err)
		}
	}
}
