package selfmaint

// This file re-exports the maintenance pipeline's extension points: the
// event bus (observe a run as a stream of Sense→Triage→Plan→Act events)
// and the Policy interface (replace the built-in escalation ladder with a
// custom planner).

import (
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Event is one bus message: payload plus envelope (virtual time, global
// sequence number, topic).
type Event = bus.Event

// Topic names one event stream on the pipeline bus.
type Topic = bus.Topic

// Subscription cancels an event subscription or tap.
type Subscription = bus.Subscription

// The pipeline's event taxonomy, in pipeline order.
const (
	TopicAlert    = bus.TopicAlert    // Sense: telemetry alerts (bus.Alert)
	TopicRequest  = bus.TopicRequest  // Plan: proactive/predictive repair requests
	TopicTicket   = bus.TopicTicket   // Triage: ticket lifecycle events
	TopicDispatch = bus.TopicDispatch // Act: work handed to a robot or technician
	TopicOutcome  = bus.TopicOutcome  // Act: work finished, fixed or not
	TopicDecision = bus.TopicDecision // Journal: every controller decision
)

// TapEvents registers fn on every pipeline topic. Taps run before topic
// subscribers and see events in publish order; cancel the returned
// subscription to detach.
func (c *Cluster) TapEvents(fn func(Event)) *Subscription {
	return c.w.Bus.Tap(fn)
}

// OnEvent registers fn for one topic.
func (c *Cluster) OnEvent(t Topic, fn func(Event)) *Subscription {
	return c.w.Bus.Subscribe(t, fn)
}

// Policy plans repairs: given a ticket and its escalation stage it picks
// the action and end to attempt, and enumerates the impact set to drain
// before a manipulation. WithPolicy installs a custom one.
type Policy = core.Policy

// Decision is a Policy verdict.
type Decision = core.Decision

// Ticket re-exports the maintenance ticket consumed by Policy.Decide.
type Ticket = ticket.Ticket

// Link and Port re-export the topology types a Policy inspects.
type (
	Link   = topology.Link
	Port   = topology.Port
	LinkID = topology.LinkID
)

// Action is a physical repair primitive.
type Action = faults.Action

// The repair actions, in built-in escalation-ladder order.
const (
	Reseat            = faults.Reseat
	CleanFiber        = faults.Clean
	ReplaceXcvr       = faults.ReplaceXcvr
	ReplaceCable      = faults.ReplaceCable
	ReplaceSwitchPort = faults.ReplaceSwitchPort
)

// End names which end of a link a repair services.
type End = faults.End

// Link ends.
const (
	EndA = faults.EndA
	EndB = faults.EndB
)

// WithPolicy substitutes the controller's planning policy; the default is
// the diagnosis-guided escalation ladder.
func WithPolicy(p Policy) Option {
	return func(o *scenario.Options) { o.Policy = p }
}
