package selfmaint

import (
	"encoding/json"
	"strconv"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/ticket"
)

func feedCluster(t *testing.T) (*Cluster, *controlplane.Hub, *Feed) {
	t.Helper()
	c, err := NewCluster(
		WithSeed(42), WithLevel(L4), WithRobots(), WithTechnicians(2),
		WithFaultAcceleration(30),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := controlplane.NewHub(controlplane.Config{})
	return c, h, c.FeedControlPlane(h)
}

// The feed publishes a complete keyed state immediately, so a snapshot
// taken before any virtual time has passed is already well-formed.
func TestFeedPublishesInitialStatus(t *testing.T) {
	_, h, _ := feedCluster(t)
	if h.Seq() == 0 {
		t.Fatal("feed published nothing at attach")
	}
	raw := h.ViewPayload(controlplane.TopicStatus, "status")
	if raw == nil {
		t.Fatal("no cp.status in view after attach")
	}
	var st map[string]any
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("status payload is not JSON: %v\n%s", err, raw)
	}
	for _, k := range []string{"virtual_time", "tickets_opened", "availability", "robot_tasks"} {
		if _, ok := st[k]; !ok {
			t.Errorf("status payload missing %q: %s", k, raw)
		}
	}
}

// After running virtual time, Sync refreshes the view: the ticket table
// matches the store and the status summary matches the report.
func TestFeedTracksTicketsAndStatus(t *testing.T) {
	c, h, f := feedCluster(t)
	c.Run(20 * Day)
	f.Sync()

	all := c.World().Store.All()
	if len(all) == 0 {
		t.Fatal("scenario produced no tickets; raise acceleration")
	}
	rows := h.ViewEntries(controlplane.TopicTicket)
	if len(rows) != len(all) {
		t.Fatalf("view has %d ticket rows, store has %d", len(rows), len(all))
	}
	byID := make(map[string][]byte, len(rows))
	for _, e := range rows {
		byID[e.Key] = e.Data
	}
	for _, tk := range all {
		raw, ok := byID[strconv.Itoa(tk.ID)]
		if !ok {
			t.Fatalf("ticket %d missing from view", tk.ID)
		}
		var row struct {
			ID       int    `json:"id"`
			Link     string `json:"link"`
			Status   string `json:"status"`
			Attempts int    `json:"attempts"`
			Window   string `json:"window"`
		}
		if err := json.Unmarshal(raw, &row); err != nil {
			t.Fatalf("ticket row: %v\n%s", err, raw)
		}
		if row.ID != tk.ID || row.Link != tk.Link.Name() || row.Status != tk.Status.String() || row.Attempts != len(tk.Attempts) {
			t.Fatalf("ticket row %s diverges from store ticket %+v", raw, tk)
		}
		if (tk.Status == ticket.Resolved) != (row.Window != "") {
			t.Fatalf("window field mismatch for ticket %d: %s", tk.ID, raw)
		}
	}

	var st struct {
		Opened   int `json:"tickets_opened"`
		Resolved int `json:"tickets_resolved"`
	}
	if err := json.Unmarshal(h.ViewPayload(controlplane.TopicStatus, "status"), &st); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if st.Opened != rep.TicketsOpened || st.Resolved != rep.TicketsResolved {
		t.Fatalf("status says %d/%d, report says %d/%d",
			st.Opened, st.Resolved, rep.TicketsOpened, rep.TicketsResolved)
	}
}

// cp.health mirrors the injector's observable state: a fault appears under
// the link's key and recovery tombstones it away.
func TestFeedHealthTombstones(t *testing.T) {
	c, h, f := feedCluster(t)
	name, err := c.InjectFault(0, XcvrDead)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(Minute) // let telemetry observe the transition
	f.Sync()
	if h.ViewPayload(controlplane.TopicHealth, name) == nil {
		t.Fatalf("no cp.health entry for faulted link %s", name)
	}

	for i := 0; i < 40 && h.ViewPayload(controlplane.TopicHealth, name) != nil; i++ {
		c.Run(6 * Hour)
		f.Sync()
	}
	if h.ViewPayload(controlplane.TopicHealth, name) != nil {
		t.Fatalf("link %s still unhealthy in view after 10 days of L4 repair", name)
	}
	// The whole view must agree with the injector, link by link.
	w := c.World()
	unhealthy := map[string]bool{}
	for _, e := range h.ViewEntries(controlplane.TopicHealth) {
		unhealthy[e.Key] = true
	}
	for _, l := range w.Net.Links {
		if got, want := unhealthy[l.Name()], w.Inj.Observable(l.ID) != faults.Healthy; got != want {
			t.Fatalf("view disagrees with injector for %s: in view %v, unhealthy %v", l.Name(), got, want)
		}
	}
}

// Every bus event becomes exactly one transient frame, delivered in bus
// order to an attached subscriber.
func TestFeedEventFramesMatchBus(t *testing.T) {
	c, err := NewCluster(
		WithSeed(42), WithLevel(L4), WithRobots(), WithTechnicians(2),
		WithFaultAcceleration(30),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Deep queue: a 10-day batch publishes hundreds of events in one Sync,
	// and this test asserts lossless delivery.
	h := controlplane.NewHub(controlplane.Config{QueueCap: 16384, Retain: 16384})
	f := c.FeedControlPlane(h)
	var tapped []uint64
	c.TapEvents(func(ev Event) { tapped = append(tapped, ev.Seq) })

	att, err := h.Attach(controlplane.AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Detach(att)

	c.Run(10 * Day)
	f.Sync()

	var got []uint64
	for {
		frames, _ := att.Take(64)
		if len(frames) == 0 {
			break
		}
		for _, fr := range frames {
			if fr.Key != "" {
				continue // keyed state frames
			}
			var p struct {
				BusSeq uint64 `json:"bus_seq"`
			}
			if err := json.Unmarshal(fr.Data, &p); err != nil {
				t.Fatalf("event payload: %v\n%s", err, fr.Data)
			}
			got = append(got, p.BusSeq)
		}
	}
	if len(tapped) == 0 {
		t.Fatal("no bus events in 10 days; raise acceleration")
	}
	if len(got) != len(tapped) {
		t.Fatalf("subscriber saw %d event frames, bus published %d", len(got), len(tapped))
	}
	for i := range got {
		if got[i] != tapped[i] {
			t.Fatalf("event %d out of order: frame bus_seq %d, tap %d", i, got[i], tapped[i])
		}
	}
}

// A fed cluster with live subscribers produces byte-identical results to a
// bare one: watchers are observability, never a results knob.
func TestFeedDoesNotPerturbRun(t *testing.T) {
	run := func(feed bool) string {
		c, err := NewCluster(
			WithSeed(7), WithLevel(L4), WithRobots(), WithTechnicians(2),
			WithFaultAcceleration(30),
		)
		if err != nil {
			t.Fatal(err)
		}
		var f *Feed
		if feed {
			h := controlplane.NewHub(controlplane.Config{QueueCap: 4}) // tiny: force drops
			f = c.FeedControlPlane(h)
			for i := 0; i < 8; i++ {
				att, err := h.Attach(controlplane.AttachOptions{Client: "w" + strconv.Itoa(i)})
				if err != nil {
					t.Fatal(err)
				}
				defer h.Detach(att)
			}
		}
		for i := 0; i < 30; i++ {
			c.Run(Day)
			if feed {
				f.Sync()
			}
		}
		return c.Report().String()
	}
	bare, fed := run(false), run(true)
	if bare != fed {
		t.Fatalf("feed perturbed the run:\nbare: %s\nfed:  %s", bare, fed)
	}
}

// Close detaches the feed: no frames are published afterwards.
func TestFeedClose(t *testing.T) {
	c, h, f := feedCluster(t)
	f.Close()
	seq := h.Seq()
	c.Run(5 * Day)
	f.Sync()
	if h.Seq() != seq+1 { // Sync still publishes one final status frame
		t.Fatalf("closed feed advanced hub seq %d -> %d", seq, h.Seq())
	}
	if len(f.pendingEv) != 0 || len(f.pendingHealth) != 0 {
		t.Fatalf("closed feed kept buffering: %d events, %d health", len(f.pendingEv), len(f.pendingHealth))
	}
}
