package selfmaint

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := NewCluster(
		WithSeed(1),
		WithLevel(L3),
		WithRobots(),
		WithTechnicians(2),
		WithFaultAcceleration(30),
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(60 * Day)
	r := c.Report()
	if r.Elapsed != 60*Day {
		t.Fatalf("elapsed %v", r.Elapsed)
	}
	if r.TicketsOpened == 0 {
		t.Fatal("no tickets in an accelerated 60-day run")
	}
	if r.TicketsResolved == 0 {
		t.Fatal("nothing resolved")
	}
	if r.RobotTasks == 0 {
		t.Fatal("no robot work at L3")
	}
	if r.FleetAvailability <= 0.9 || r.FleetAvailability > 1 {
		t.Fatalf("availability %v", r.FleetAvailability)
	}
	if r.String() == "" {
		t.Fatal("report string")
	}
	if len(c.TicketLog()) != r.TicketsOpened {
		t.Fatal("ticket log length")
	}
	if a := c.Availability(100); a <= 0 || a > 1 {
		t.Fatalf("traffic availability %v", a)
	}
	hours, frac := c.ServiceWindowCDF(10)
	if len(hours) != 10 || frac[len(frac)-1] != 1 {
		t.Fatal("cdf shape")
	}
}

func TestInjectFault(t *testing.T) {
	c, err := NewCluster(WithSeed(2), WithLevel(L3), WithRobots(), WithTechnicians(1))
	if err != nil {
		t.Fatal(err)
	}
	name, err := c.InjectFault(0, XcvrDead)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("no link name")
	}
	if _, err := c.InjectFault(0, Oxidation); err == nil {
		t.Fatal("double inject accepted")
	}
	if _, err := c.InjectFault(10_000, Oxidation); err == nil {
		t.Fatal("out of range accepted")
	}
	c.Run(Day)
	r := c.Report()
	if r.TicketsResolved != 1 {
		t.Fatalf("resolved %d", r.TicketsResolved)
	}
}

func TestTopologyOptions(t *testing.T) {
	for name, build := range map[string]func() (*Network, error){
		"leafspine": LeafSpine(4, 2, 2),
		"fattree":   FatTree(4),
		"jellyfish": Jellyfish(12, 4, 2, 1),
		"xpander":   Xpander(5, 2, 2, 1),
		"aicluster": AICluster(8, 2),
	} {
		c, err := NewCluster(WithTopology(build), WithLevel(L2), WithRobots(), WithTechnicians(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(c.Network().Links) == 0 {
			t.Fatalf("%s: empty network", name)
		}
		c.Run(Hour)
	}
}

func TestHardwareDiversityOption(t *testing.T) {
	c, err := NewCluster(WithHardwareDiversity(1), WithLevel(L3), WithRobots(), WithTechnicians(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.World().Fleet == nil {
		t.Fatal("no fleet")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report {
		c, err := NewCluster(WithSeed(42), WithLevel(L3), WithRobots(), WithTechnicians(2), WithFaultAcceleration(30))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(30 * Day)
		return c.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic reports:\n%v\n%v", a, b)
	}
}

func TestTicketLogFormatting(t *testing.T) {
	c, err := NewCluster(WithSeed(3), WithLevel(L3), WithRobots(), WithTechnicians(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InjectFault(1, Oxidation); err != nil {
		t.Fatal(err)
	}
	c.Run(Day)
	log := c.TicketLog()
	if len(log) == 0 {
		t.Fatal("empty log")
	}
	if !strings.Contains(log[0], "resolved") {
		t.Fatalf("log line: %s", log[0])
	}
	if !strings.Contains(log[0], "fixed by") {
		t.Fatalf("log line lacks fixer: %s", log[0])
	}
}
