package selfmaint

// This file is the delta producer for the streaming control plane: a Feed
// bridges a running cluster into a controlplane.Hub, turning bus events and
// link-health transitions into hub frames and keeping the keyed state
// topics (cp.status, cp.health, cp.ticket) current.
//
// The bridge is split in two halves to respect the pipeline's concurrency
// discipline. Bus taps and injector listeners fire synchronously inside the
// simulation step, where blocking operations (locks, channel sends) are
// forbidden — so the handlers only append to plain slices. Sync, called by
// the driver at the step edge (outside any handler), drains those buffers
// into the hub, which is where the hub mutex is taken and subscribers are
// woken. Watchers therefore observe the run without ever being able to
// perturb it: the simulation thread never blocks on a subscriber, and the
// feed reads nothing back from the hub.

import (
	"fmt"
	"strconv"

	"repro/internal/bus"
	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Feed streams a cluster's state into a control-plane hub. Create one with
// Cluster.FeedControlPlane and call Sync after each batch of virtual time.
type Feed struct {
	c      *Cluster
	hub    *controlplane.Hub
	sub    *bus.Subscription
	closed bool

	// Handler-side buffers: appended to inside bus/injector callbacks,
	// drained by Sync. The simulation is single-threaded, so no locking.
	pendingEv     []bus.Event
	pendingHealth []healthChange
	dirty         []int // ticket ids touched since the last Sync, first-touch order
	dirtySet      map[int]bool

	// known indexes the ticket store by id, extended incrementally as the
	// store grows (Store.All is append-only).
	known   map[int]*ticket.Ticket
	scanned int
}

// healthChange is one observable link-health transition.
type healthChange struct {
	link string
	to   faults.Health
	at   sim.Time
}

// FeedControlPlane attaches a feed to the cluster: every pipeline bus event
// becomes a transient hub frame under its bus topic name, and the keyed
// topics cp.status, cp.health and cp.ticket track the run summary, the set
// of unhealthy links, and the ticket table. The current state is published
// immediately, so snapshots are complete from the moment the feed exists;
// afterwards the caller must invoke Feed.Sync at each step edge (after each
// Run slice) to flush accumulated deltas.
func (c *Cluster) FeedControlPlane(h *controlplane.Hub) *Feed {
	f := &Feed{
		c: c, hub: h,
		dirtySet: make(map[int]bool),
		known:    make(map[int]*ticket.Ticket),
	}
	f.sub = c.TapEvents(f.onEvent)
	c.w.Inj.Subscribe(f)

	// Prime with the state that predates the feed: unhealthy links and any
	// tickets already in the store.
	now := c.Now()
	for _, l := range c.w.Net.Links {
		if obs := c.w.Inj.Observable(l.ID); obs != faults.Healthy {
			f.pendingHealth = append(f.pendingHealth, healthChange{link: l.Name(), to: obs, at: now})
		}
	}
	for _, t := range c.w.Store.All() {
		f.markDirty(t.ID)
	}
	f.Sync()
	return f
}

// Close detaches the bus tap and makes the remaining callbacks inert. (The
// fault injector has no unsubscribe; its listener slot stays registered but
// stops buffering.)
func (f *Feed) Close() {
	f.sub.Cancel()
	f.closed = true
}

// onEvent is the bus tap: buffer the event and note which ticket it
// touched. Runs inside the simulation step — append-only, nothing blocking.
func (f *Feed) onEvent(ev bus.Event) {
	if f.closed {
		return
	}
	f.pendingEv = append(f.pendingEv, ev)
	switch p := ev.Payload.(type) {
	case bus.TicketEvent:
		f.markDirty(p.ID)
	case bus.Dispatch:
		f.markDirty(p.Ticket)
	case bus.WorkOutcome:
		f.markDirty(p.Ticket)
	case bus.WatchdogFired:
		f.markDirty(p.Ticket)
	case bus.Degraded:
		f.markDirty(p.Ticket)
	}
}

func (f *Feed) markDirty(id int) {
	if !f.dirtySet[id] {
		f.dirtySet[id] = true
		f.dirty = append(f.dirty, id)
	}
}

// LinkStateChanged implements faults.Listener: buffer the observable
// transition for the next Sync.
func (f *Feed) LinkStateChanged(l *topology.Link, from, to faults.Health, at sim.Time) {
	if f.closed {
		return
	}
	f.pendingHealth = append(f.pendingHealth, healthChange{link: l.Name(), to: to, at: at})
}

// LinkFlapped implements faults.Listener. Flap episodes do not change the
// observable health state, so there is nothing to publish; the telemetry
// pipeline turns sustained flapping into alerts, which arrive via the bus
// tap.
func (f *Feed) LinkFlapped(l *topology.Link, dur sim.Time, lossFrac float64, at sim.Time) {}

// Sync drains everything buffered since the last call into the hub:
// health transitions (tombstoning recovered links), bus event frames,
// refreshed rows for touched tickets, and a fresh status summary. Call it
// at the step edge, never from inside a bus or injector callback — this is
// the half that takes the hub lock.
func (f *Feed) Sync() {
	now := f.c.Now()
	for _, hc := range f.pendingHealth {
		if hc.to == faults.Healthy {
			f.hub.Publish(controlplane.TopicHealth, hc.link, true, hc.at, nil)
		} else {
			f.hub.Publish(controlplane.TopicHealth, hc.link, false, hc.at, renderHealth(hc.to))
		}
	}
	for _, ev := range f.pendingEv {
		f.hub.Publish(controlplane.Topic(ev.Topic), "", false, ev.At, renderEvent(ev))
	}
	for _, id := range f.dirty {
		if t := f.lookup(id); t != nil {
			f.hub.Publish(controlplane.TopicTicket, strconv.Itoa(id), false, now, renderTicket(t))
		}
	}
	f.hub.Publish(controlplane.TopicStatus, "status", false, now, f.renderStatus(now))

	f.pendingHealth = f.pendingHealth[:0]
	f.pendingEv = f.pendingEv[:0]
	f.dirty = f.dirty[:0]
	clear(f.dirtySet)
}

// lookup resolves a ticket id against the store, extending the index over
// any tickets created since the last call.
func (f *Feed) lookup(id int) *ticket.Ticket {
	if t := f.known[id]; t != nil {
		return t
	}
	all := f.c.w.Store.All()
	for ; f.scanned < len(all); f.scanned++ {
		f.known[all[f.scanned].ID] = all[f.scanned]
	}
	return f.known[id]
}

// renderHealth is the cp.health payload: {"health":"down"}.
func renderHealth(h faults.Health) []byte {
	b := make([]byte, 0, 24)
	b = append(b, `{"health":`...)
	b = strconv.AppendQuote(b, h.String())
	return append(b, '}')
}

// renderEvent is the transient bus-frame payload. The frame envelope
// already carries the virtual time and topic; the payload adds the bus
// sequence number and the event's formatted body, mirroring the daemon's
// /events rows.
func renderEvent(ev bus.Event) []byte {
	text := fmt.Sprint(ev.Payload)
	b := make([]byte, 0, 32+len(text))
	b = append(b, `{"bus_seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"text":`...)
	b = strconv.AppendQuote(b, text)
	return append(b, '}')
}

// renderTicket is the cp.ticket row payload, the same shape as the
// daemon's /tickets rows.
func renderTicket(t *ticket.Ticket) []byte {
	b := make([]byte, 0, 128)
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(t.ID), 10)
	b = append(b, `,"link":`...)
	b = strconv.AppendQuote(b, t.Link.Name())
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, t.Kind.String())
	b = append(b, `,"status":`...)
	b = strconv.AppendQuote(b, t.Status.String())
	if t.Status == ticket.Resolved {
		b = append(b, `,"window":`...)
		b = strconv.AppendQuote(b, t.ServiceWindow().String())
	}
	b = append(b, `,"attempts":`...)
	b = strconv.AppendInt(b, int64(len(t.Attempts)), 10)
	return append(b, '}')
}

// renderStatus is the cp.status payload: the run summary with the same
// keys the daemon's /status endpoint has always served.
func (f *Feed) renderStatus(now sim.Time) []byte {
	rep := f.c.Report()
	b := make([]byte, 0, 384)
	b = append(b, `{"virtual_time":`...)
	b = strconv.AppendQuote(b, now.String())
	b = appendIntField(b, "tickets_opened", rep.TicketsOpened)
	b = appendIntField(b, "tickets_resolved", rep.TicketsResolved)
	b = append(b, `,"mean_window":`...)
	b = strconv.AppendQuote(b, rep.MeanServiceWindow.String())
	b = append(b, `,"availability":`...)
	b = strconv.AppendFloat(b, rep.FleetAvailability, 'g', -1, 64)
	b = append(b, `,"down_link_hours":`...)
	b = strconv.AppendFloat(b, rep.DownLinkHours, 'g', -1, 64)
	b = appendIntField(b, "robot_tasks", rep.RobotTasks)
	b = appendIntField(b, "human_tasks", rep.HumanTasks)
	b = appendIntField(b, "human_escalations", rep.EscalationsToHuman)
	b = appendIntField(b, "cascades", rep.CascadesDuringOps)
	b = appendIntField(b, "proactive_tasks", rep.ProactiveTasks)
	b = appendIntField(b, "predictive_tasks", rep.PredictiveTasks)
	b = appendIntField(b, "watchdog_fires", rep.WatchdogFires)
	b = appendIntField(b, "late_outcomes", rep.LateOutcomes)
	b = appendIntField(b, "degraded_tickets", rep.DegradedTickets)
	return append(b, '}')
}

func appendIntField(b []byte, key string, v int) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}
