// Package selfmaint is the public API of the self-maintaining datacenter
// network framework: build a simulated cluster, choose an automation level
// (L0 human-only through L4 fully autonomous, §2.1 of the paper), run
// virtual time, inject faults, and read back the maintenance outcomes —
// service windows, availability, ticket history, robot activity.
//
// Quickstart:
//
//	c, err := selfmaint.NewCluster(
//		selfmaint.WithLevel(selfmaint.L3),
//		selfmaint.WithRobots(),
//		selfmaint.WithTechnicians(2),
//	)
//	...
//	c.Run(30 * selfmaint.Day)
//	fmt.Println(c.Report())
//
// The deeper machinery (topology builders, fault models, the controller)
// lives in internal packages; this package re-exports the identifiers a
// downstream user needs.
package selfmaint

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/maintindex"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Time is virtual time; see the sim package for semantics.
type Time = sim.Time

// Convenient virtual-time units.
const (
	Second = sim.Second
	Minute = sim.Minute
	Hour   = sim.Hour
	Day    = sim.Day
	Year   = sim.Year
)

// Level is the automation level (§2.1).
type Level = core.Level

// Automation levels, L0 (all-human) through L4 (fully autonomous including
// proactive and predictive maintenance).
const (
	L0 = core.L0
	L1 = core.L1
	L2 = core.L2
	L3 = core.L3
	L4 = core.L4
)

// Cause re-exports the hidden fault causes for fault-injection scenarios.
type Cause = faults.Cause

// Injectable fault causes.
const (
	Oxidation     = faults.Oxidation
	FirmwareHang  = faults.FirmwareHang
	Contamination = faults.Contamination
	XcvrDead      = faults.XcvrDead
	CableDamaged  = faults.CableDamaged
	SwitchPort    = faults.SwitchPort
)

// Network re-exports the topology type for advanced construction.
type Network = topology.Network

// Option configures NewCluster.
type Option func(*scenario.Options)

// WithSeed fixes the random seed (default 1); equal seeds reproduce runs
// exactly.
func WithSeed(seed uint64) Option {
	return func(o *scenario.Options) { o.Seed = seed }
}

// WithLevel selects the automation level (default L0).
func WithLevel(l Level) Option {
	return func(o *scenario.Options) { o.Level = l }
}

// WithTechnicians staffs the human crew (default 0 — pair it with robots,
// or repairs will queue forever).
func WithTechnicians(n int) Option {
	return func(o *scenario.Options) { o.Techs = n }
}

// WithRobots deploys one row-scope robotic unit per equipment row.
func WithRobots() Option {
	return func(o *scenario.Options) { o.Robots = true }
}

// WithTopology substitutes a custom network builder. The builders in this
// package (LeafSpine, FatTree, Jellyfish, Xpander, AICluster) or a
// hand-assembled *Network can be used.
func WithTopology(build func() (*Network, error)) Option {
	return func(o *scenario.Options) { o.BuildNet = build }
}

// WithFaultAcceleration multiplies all hardware failure rates, compressing
// years of aging into shorter runs. Comparisons between levels are
// unaffected.
func WithFaultAcceleration(x float64) Option {
	return func(o *scenario.Options) { o.FaultScale = x }
}

// WithHardwareDiversity sets how many distinct transceiver models the
// robots' perception must cover (default: the full 32-model catalog).
// Diversity 1 models the standardized-hardware future the paper argues for.
func WithHardwareDiversity(models int) Option {
	return func(o *scenario.Options) { o.FleetDiversity = models }
}

// Topology builders, re-exported with friendly signatures.

// LeafSpine builds a two-tier Clos pod.
func LeafSpine(leaves, spines, hostsPerLeaf int) func() (*Network, error) {
	return func() (*Network, error) {
		return topology.NewLeafSpine(topology.LeafSpineConfig{
			Leaves: leaves, Spines: spines, HostsPerLeaf: hostsPerLeaf,
			Uplinks: 1, FabricGbps: 400, HostGbps: 100,
		})
	}
}

// FatTree builds a k-ary fat-tree.
func FatTree(k int) func() (*Network, error) {
	return func() (*Network, error) {
		return topology.NewFatTree(topology.DefaultFatTree(k))
	}
}

// Jellyfish builds a random regular fabric.
func Jellyfish(switches, degree, hostsPerSwitch int, seed uint64) func() (*Network, error) {
	return func() (*Network, error) {
		return topology.NewJellyfish(topology.JellyfishConfig{
			Switches: switches, FabricDegree: degree, HostsPerSwitch: hostsPerSwitch,
			FabricGbps: 400, HostGbps: 100, Seed: seed,
		})
	}
}

// Xpander builds an Xpander expander fabric.
func Xpander(degree, lift, hostsPerSwitch int, seed uint64) func() (*Network, error) {
	return func() (*Network, error) {
		return topology.NewXpander(topology.XpanderConfig{
			Degree: degree, Lift: lift, HostsPerSwitch: hostsPerSwitch,
			FabricGbps: 400, HostGbps: 100, Seed: seed,
		})
	}
}

// AICluster builds a rail-optimized GPU training fabric.
func AICluster(servers, rails int) func() (*Network, error) {
	return func() (*Network, error) {
		return topology.NewAICluster(topology.AIClusterConfig{
			Servers: servers, RailsPerServer: rails, RailGbps: 400,
		})
	}
}

// Cluster is a running self-maintaining datacenter simulation.
type Cluster struct {
	w *scenario.World
}

// NewCluster builds a cluster. With no options it is a 16-leaf/4-spine hall
// at L0 with no staff — add WithLevel, WithRobots and WithTechnicians.
func NewCluster(opts ...Option) (*Cluster, error) {
	var o scenario.Options
	for _, opt := range opts {
		opt(&o)
	}
	w, err := scenario.Build(o)
	if err != nil {
		return nil, err
	}
	return &Cluster{w: w}, nil
}

// Run advances virtual time by d.
func (c *Cluster) Run(d Time) { c.w.Run(c.w.Eng.Now() + d) }

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.w.Eng.Now() }

// Network returns the underlying topology (read-only by convention).
func (c *Cluster) Network() *Network { return c.w.Net }

// InjectFault forces a fault on the nth fabric link (scenario hook). It
// returns the link name.
func (c *Cluster) InjectFault(n int, cause Cause) (string, error) {
	fabric := c.w.Net.SwitchLinks()
	if n < 0 || n >= len(fabric) {
		return "", fmt.Errorf("selfmaint: fabric link %d out of range (have %d)", n, len(fabric))
	}
	l := fabric[n]
	if c.w.Inj.State(l.ID).Cause != faults.None {
		return "", fmt.Errorf("selfmaint: link %s already faulted", l.Name())
	}
	c.w.Inj.InduceFault(l, cause)
	return l.Name(), nil
}

// Report summarizes a run.
type Report struct {
	Elapsed            Time
	TicketsOpened      int
	TicketsResolved    int
	MeanServiceWindow  Time
	P99ServiceWindowH  float64
	FleetAvailability  float64
	DownLinkHours      float64
	DegradedLinkHours  float64
	RobotTasks         int
	HumanTasks         int
	EscalationsToHuman int
	CascadesDuringOps  int
	ProactiveTasks     int
	PredictiveTasks    int
	WatchdogFires      int
	LateOutcomes       int
	DegradedTickets    int
}

// Report computes the current run summary.
func (c *Cluster) Report() Report {
	sum := c.w.Store.Summarize()
	var st core.Stats
	if c.w.Ctrl != nil {
		st = c.w.Ctrl.Stats()
	}
	h := c.w.ReactiveServiceWindows()
	return Report{
		Elapsed:            c.w.Eng.Now(),
		TicketsOpened:      sum.Total,
		TicketsResolved:    sum.Resolved,
		MeanServiceWindow:  sum.MeanWindow,
		P99ServiceWindowH:  h.Quantile(0.99),
		FleetAvailability:  c.w.Ledger.FleetAvailability(),
		DownLinkHours:      c.w.Ledger.DownLinkHours(),
		DegradedLinkHours:  c.w.Ledger.DegradedLinkHours(),
		RobotTasks:         st.RobotTasks,
		HumanTasks:         st.HumanTasks,
		EscalationsToHuman: st.EscalationsToHuman,
		CascadesDuringOps:  st.CascadesDuringOps,
		ProactiveTasks:     st.ProactiveTasks,
		PredictiveTasks:    st.PredictiveTasks,
		WatchdogFires:      st.WatchdogFires,
		LateOutcomes:       st.LateOutcomes,
		DegradedTickets:    st.DegradedTickets,
	}
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "after %v:\n", r.Elapsed)
	fmt.Fprintf(&b, "  tickets: %d opened, %d resolved (mean window %v, p99 %.1fh)\n",
		r.TicketsOpened, r.TicketsResolved, r.MeanServiceWindow, r.P99ServiceWindowH)
	fmt.Fprintf(&b, "  availability: %.6f (%.1f down link-hours, %.1f degraded)\n",
		r.FleetAvailability, r.DownLinkHours, r.DegradedLinkHours)
	fmt.Fprintf(&b, "  work: %d robot tasks, %d human tasks, %d escalations, %d cascades\n",
		r.RobotTasks, r.HumanTasks, r.EscalationsToHuman, r.CascadesDuringOps)
	if r.ProactiveTasks+r.PredictiveTasks > 0 {
		fmt.Fprintf(&b, "  proactive: %d campaign tasks, %d predictive\n", r.ProactiveTasks, r.PredictiveTasks)
	}
	if r.WatchdogFires+r.LateOutcomes+r.DegradedTickets > 0 {
		fmt.Fprintf(&b, "  watchdog: %d fired, %d late outcomes, %d tickets degraded to human\n",
			r.WatchdogFires, r.LateOutcomes, r.DegradedTickets)
	}
	return b.String()
}

// DecisionLog returns up to n recent controller decisions (dispatches,
// drains, escalations, campaigns), formatted one per line, oldest first.
// n <= 0 returns everything retained.
func (c *Cluster) DecisionLog(n int) []string {
	if c.w.Ctrl == nil {
		return nil
	}
	var out []string
	for _, e := range c.w.Ctrl.Journal(n) {
		out = append(out, e.String())
	}
	return out
}

// TicketLog returns one formatted line per ticket, in creation order — the
// operational audit trail.
func (c *Cluster) TicketLog() []string {
	var out []string
	for _, t := range c.w.Store.All() {
		line := fmt.Sprintf("[%v] %s %s %s", t.CreatedAt, t.Link.Name(), t.Kind, t.Status)
		if t.Status == ticket.Resolved {
			line += fmt.Sprintf(" in %v after %d attempt(s)", t.ServiceWindow(), len(t.Attempts))
			for _, a := range t.Attempts {
				if a.Fixed {
					line += fmt.Sprintf(" [fixed by %s via %s]", a.Actor, a.Action)
				}
			}
		}
		out = append(out, line)
	}
	return out
}

// Availability evaluates a uniform traffic matrix of the given total load
// (Gbps) and returns the satisfied fraction right now.
func (c *Cluster) Availability(totalGbps float64) float64 {
	return c.w.TrafficAvailability(routing.UniformMatrix(c.w.Net, totalGbps))
}

// ServiceWindowCDF returns (hours, fraction) pairs for resolved reactive
// repairs.
func (c *Cluster) ServiceWindowCDF(points int) (hours, frac []float64) {
	return c.w.ReactiveServiceWindows().CDF(points)
}

// World exposes the underlying wired world for advanced scenarios (the
// experiment harness uses it). Most users never need it.
func (c *Cluster) World() *scenario.World { return c.w }

// Recording is an attached flight recorder; see RecordTo.
type Recording = scenario.Recording

// RecordTo attaches a flight recorder to the cluster: every bus event plus
// periodic metric snapshots (when snapshotEvery > 0) stream to w in the
// flightrec binary format, and Close appends the end-of-run scalars and a
// fingerprint trailer. Recording is passive — a recorded run produces
// byte-for-byte the same Report as an unrecorded one. meta is free-form
// run identification (seed, level, config digest) stored in the file
// header. Call (*Recording).Close before reading the output.
func (c *Cluster) RecordTo(w io.Writer, meta map[string]string, snapshotEvery Time) (*Recording, error) {
	return c.w.StartRecording(w, meta, snapshotEvery)
}

// Histogram re-exports the metrics histogram for custom analyses.
type Histogram = metrics.Histogram

// MaintainabilityReport re-exports the self-maintainability evaluation of a
// network design (§4's proposed metric).
type MaintainabilityReport = maintindex.Report

// EvaluateMaintainability scores a topology's amenability to robotic
// maintenance: a composite of locality, panel clarity, tray headroom, run
// length, drain tolerance, repair parallelism, media simplicity and wiring
// regularity, in [0,100].
func EvaluateMaintainability(n *Network) MaintainabilityReport {
	return maintindex.Evaluate(n, maintindex.DefaultConfig())
}
